"""Self-healing formation fleet: persistent workers, leases, respawn.

The pool drivers (:mod:`repro.harness.parallel`) have a single-fault
collapse mode: one worker dying hard breaks the whole
``ProcessPoolExecutor`` and every unfinished task degrades to in-process
serial — a 10,000-function corpus run loses all parallelism to one bad
function.  This module replaces pool-per-run with a *fleet*: long-lived
daemon worker processes (:mod:`repro.harness.fleet_worker`) fed from a
lease-based job queue, supervised like a prun-style scheduler (polled
job queue, per-job contexts, bounded parallelism):

- every job is **leased** to one worker with a heartbeat channel and an
  optional hard deadline; the supervisor polls worker pipes and worker
  liveness on every tick;
- a worker dying (process exit, broken pipe) or stalling (missed
  heartbeats, expired lease) costs *one worker and one lease*: the
  supervisor respawns only the dead worker and requeues the lease with a
  retry budget and capped, deterministically-jittered backoff
  (:func:`repro.harness.parallel.retry_delay`);
- a job that kills its worker twice is **quarantined** — resolved
  ``failed_safe`` like the in-process trial-guard blacklist, so one
  poison function can never starve the corpus;
- completed jobs are journalled to an append-only :class:`RunJournal`
  (per-function decision fingerprints via the PR-5 ledger machinery), so
  a killed *driver* resumes mid-corpus and the merged run record is
  verifiable bit-identical to an uninterrupted serial run.

Supervision decisions are first-class telemetry: ``worker_spawn`` /
``worker_death`` / ``lease_grant`` / ``lease_requeue`` / ``lease_expired``
/ ``job_quarantined`` trace events, and ``fleet_*`` counters/histograms
(respawns, lease expiries, requeues, quarantines, heartbeat age, steal
latency, job seconds) in the active tracer's metrics registry.

Entry points: :func:`form_many_fleet` mirrors
:func:`~repro.harness.parallel.form_many_parallel` (and backs its
``driver="fleet"`` switch); :func:`run_fleet_corpus` is the journalled
corpus runner behind ``python -m repro.harness fleet``; and
:func:`run_fleet_drill` is the suite-wide kill/stall/raise containment
proof.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Callable, Optional, Sequence

from repro.core.convergent import form_module
from repro.core.merge import MergeStats
from repro.harness import fleet_worker
from repro.harness.parallel import (
    DEFAULT_BACKOFF,
    DEFAULT_RETRIES,
    _auto_serial,
    _failed_safe_report,
    _module_failed_safe,
    retry_delay,
)
from repro.ir.function import Module
from repro.obs import trace as obs_trace
from repro.obs.ledger import (
    RECORD_SCHEMA_VERSION,
    commit_metadata,
    decision_fingerprints,
    fingerprint_of,
    machine_metadata,
    utc_timestamp,
    validate_record,
)
from repro.obs import live as obs_live
from repro.obs.metrics import MetricsRegistry
from repro.obs.replay import attach_stats, log_from_trace
from repro.obs.trace import FormationTrace, Tracer, tracing
from repro.obs.sink import MemorySink
from repro.profiles import collect_profile
from repro.robustness.faultinject import FaultPlane, active_plane
from repro.robustness.guard import FormationReport, TrialFailure

#: Fleet metric names (the ``obs.metrics`` face of the supervisor).
RESPAWNS_METRIC = "fleet_respawns_total"
LEASE_EXPIRIES_METRIC = "fleet_lease_expiries_total"
REQUEUES_METRIC = "fleet_requeues_total"
QUARANTINED_METRIC = "fleet_quarantined_total"
JOBS_METRIC = "fleet_jobs_total"
HEARTBEAT_AGE_METRIC = "fleet_heartbeat_age_seconds"
STEAL_LATENCY_METRIC = "fleet_steal_latency_seconds"
JOB_SECONDS_METRIC = "fleet_job_seconds"

#: Default fleet width when the caller does not pick one: modest, because
#: fleet start-up cost is per *worker* (spawned interpreter), not per run.
DEFAULT_FLEET_WORKERS = min(4, os.cpu_count() or 1)


class FleetError(RuntimeError):
    """The fleet itself failed (spawn storm, journal mismatch, ...) —
    distinct from job failures, which resolve ``failed_safe``."""


@dataclass
class FleetConfig:
    """Supervision knobs for one :class:`Fleet`.

    ``heartbeat_timeout`` is the stall detector: a leased worker whose
    last heartbeat is older than this is presumed wedged, killed, and
    respawned.  ``lease_timeout`` (optional) is a hard per-lease wall
    clock on top — for jobs that keep beating but never finish.
    ``quarantine_after`` is the poison-job threshold: that many fatal
    lease losses (worker death or expiry) resolve the job
    ``failed_safe`` instead of requeueing it a third time.
    """

    workers: int = DEFAULT_FLEET_WORKERS
    heartbeat_interval: float = 0.2
    heartbeat_timeout: float = 5.0
    lease_timeout: Optional[float] = None
    boot_timeout: float = 30.0
    poll_interval: float = 0.05
    retries: int = DEFAULT_RETRIES
    backoff: float = DEFAULT_BACKOFF
    quarantine_after: int = 2


@dataclass
class _Job:
    """One leased unit of work and its recovery bookkeeping."""

    key: object  # caller's result key (corpus name / input index)
    name: str  # task name for traces, jitter, fault targeting
    size: int  # scheduling weight (largest-first)
    payload: tuple  # fleet_worker job payload
    attempts: int = 0  # executions burned (failures + fatal leases)
    fatal: int = 0  # worker-killing lease losses (death/expiry)
    not_before: float = 0.0  # backoff gate (monotonic clock)
    ready_at: float = 0.0  # when the job (re)entered the queue
    last_error: Optional[dict] = None


@dataclass
class _Lease:
    job: _Job
    granted: float
    deadline: Optional[float]


class _WorkerHandle:
    """Supervisor-side state of one live worker process."""

    __slots__ = (
        "worker_id", "process", "conn", "spawned", "ready", "last_beat",
        "lease", "jobs_done",
    )

    def __init__(self, worker_id: int, process, conn, now: float):
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        self.spawned = now
        self.ready = False
        self.last_beat = now
        self.lease: Optional[_Lease] = None
        self.jobs_done = 0


class Fleet:
    """A supervised set of persistent formation workers.

    Use as a context manager (``with Fleet(config) as fleet:``) or call
    :meth:`shutdown` explicitly.  :meth:`run` drives a batch of jobs to
    resolution and may be called repeatedly on one fleet — workers
    persist across batches, which is the whole point.
    """

    def __init__(
        self,
        config: Optional[FleetConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.config = config or FleetConfig()
        if self.config.workers < 1:
            raise FleetError("a fleet needs at least one worker")
        self.tracer = obs_trace.active_tracer()
        self.metrics = metrics if metrics is not None else (
            self.tracer.metrics if self.tracer is not None else None
        )
        # Live stream: per-worker snapshots from heartbeat piggybacks
        # merge into our registry under a worker label (idempotent —
        # duplicates and reordering on the pipe cannot double-count).
        self._merger = (
            obs_live.SnapshotMerger(self.metrics)
            if self.metrics is not None
            else None
        )
        self._ctx = multiprocessing.get_context("spawn")
        self._workers: dict[int, _WorkerHandle] = {}
        self._next_worker_id = 0
        self._shutting_down = False
        # Run-scoped queues/results; reset by run().
        self._pending: deque[_Job] = deque()
        self._parked: list[tuple[float, int, _Job]] = []  # (not_before, seq)
        self._park_seq = 0
        self._results: dict = {}
        self._on_complete: Optional[Callable] = None
        # Lifetime counters (surface via stats() and the run record).
        self.spawns = 0
        self.respawns = 0
        self.requeues = 0
        self.lease_expiries = 0
        self.quarantined: list[str] = []
        self.jobs_ok = 0
        self.jobs_failed = 0

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "Fleet":
        self._ensure_workers()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def _spawn(self, respawn: bool = False) -> _WorkerHandle:
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=fleet_worker.worker_main,
            args=(child_conn, worker_id, self.config.heartbeat_interval),
            name=f"fleet-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # our copy; the worker holds the real end
        handle = _WorkerHandle(
            worker_id, process, parent_conn, time.monotonic()
        )
        self._workers[worker_id] = handle
        self.spawns += 1
        if respawn:
            self.respawns += 1
        if self.tracer is not None:
            self.tracer.event(
                "worker_spawn",
                worker=worker_id,
                pid=process.pid,
                respawn=respawn,
            )
        if self.metrics is not None and respawn:
            self.metrics.inc(RESPAWNS_METRIC)
        return handle

    def _ensure_workers(self) -> None:
        while len(self._workers) < self.config.workers:
            self._spawn(respawn=False)

    def shutdown(self) -> None:
        """Stop every worker: polite shutdown message, then the axe."""
        self._shutting_down = True
        for handle in self._workers.values():
            try:
                handle.conn.send(("shutdown",))
            except (BrokenPipeError, OSError):
                pass
        for handle in self._workers.values():
            handle.process.join(timeout=1.0)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(timeout=1.0)
            try:
                handle.conn.close()
            except OSError:
                pass
        self._workers.clear()

    def stats(self) -> dict:
        """Supervision counters for reports and run records."""
        return {
            "workers": self.config.workers,
            "spawns": self.spawns,
            "respawns": self.respawns,
            "requeues": self.requeues,
            "lease_expiries": self.lease_expiries,
            "quarantined": sorted(self.quarantined),
            "jobs_ok": self.jobs_ok,
            "jobs_failed": self.jobs_failed,
            "live_snapshots_applied": (
                self._merger.applied if self._merger is not None else 0
            ),
            "live_snapshots_stale": (
                self._merger.stale if self._merger is not None else 0
            ),
        }

    # -- the event loop --------------------------------------------------

    def run(
        self,
        jobs: Sequence[_Job],
        on_complete: Optional[Callable] = None,
        stop_after: Optional[int] = None,
    ) -> dict:
        """Drive ``jobs`` to resolution; returns ``{key: (status, value)}``.

        ``status`` is ``"ok"`` (value = the worker's ``(formed, report,
        fragment)`` tuple) or ``"failed"`` (value = a
        :class:`TrialFailure`).  ``on_complete(key, status, value)`` fires
        at each resolution — the journal hook.  ``stop_after`` abandons
        the run after that many *new* resolutions (the CI resume smoke's
        stand-in for a killed driver); unresolved jobs simply do not
        appear in the result.
        """
        self._ensure_workers()
        self._results = {}
        self._on_complete = on_complete
        self._pending = deque(
            sorted(jobs, key=lambda job: (-job.size, job.name))
        )
        now = time.monotonic()
        for job in self._pending:
            job.ready_at = now
        self._parked = []
        total = len(jobs)
        # Termination backstop: every respawn is attributable to a fatal
        # lease (bounded by quarantine_after per job) or a boot failure;
        # a budget far above that can only mean workers die on arrival.
        respawn_budget = (
            self.respawns + self.config.quarantine_after * total
            + 2 * self.config.workers + 4
        )
        while len(self._results) < total:
            if stop_after is not None and len(self._results) >= stop_after:
                break
            if self.respawns > respawn_budget:
                raise FleetError(
                    f"respawn storm: {self.respawns} respawns for {total} "
                    "jobs — workers appear to die on boot"
                )
            now = time.monotonic()
            self._unpark(now)
            self._assign(now)
            self._poll(now)
            self._check_health(time.monotonic())
        return self._results

    # -- queue plumbing --------------------------------------------------

    def _unpark(self, now: float) -> None:
        while self._parked and self._parked[0][0] <= now:
            _, _, job = heapq.heappop(self._parked)
            job.ready_at = now
            self._pending.append(job)

    def _park(self, job: _Job, delay: float, now: float) -> None:
        job.not_before = now + delay
        self._park_seq += 1
        heapq.heappush(self._parked, (job.not_before, self._park_seq, job))

    def _assign(self, now: float) -> None:
        for handle in self._workers.values():
            if not self._pending:
                return
            if not handle.ready or handle.lease is not None:
                continue
            job = self._pending.popleft()
            deadline = (
                now + self.config.lease_timeout
                if self.config.lease_timeout is not None
                else None
            )
            try:
                handle.conn.send(("job", job.key, job.payload))
            except (BrokenPipeError, OSError):
                # Worker died between polls; health check will respawn it.
                self._pending.appendleft(job)
                continue
            handle.lease = _Lease(job, now, deadline)
            handle.last_beat = now  # the clock starts at grant
            if self.tracer is not None:
                self.tracer.event(
                    "lease_grant",
                    task=job.name,
                    worker=handle.worker_id,
                    attempt=job.attempts + 1,
                )
            if self.metrics is not None:
                self.metrics.observe(
                    STEAL_LATENCY_METRIC, now - job.ready_at
                )

    # -- message handling ------------------------------------------------

    def _poll(self, now: float) -> None:
        conns = {
            handle.conn: handle for handle in self._workers.values()
        }
        if not conns:
            return
        try:
            ready = mp_connection.wait(
                list(conns), timeout=self.config.poll_interval
            )
        except OSError:
            ready = []
        for conn in ready:
            handle = conns[conn]
            if handle.worker_id not in self._workers:
                continue  # already declared dead while draining a sibling
            self._drain(handle)

    def _drain(self, handle: _WorkerHandle) -> None:
        while True:
            try:
                if not handle.conn.poll():
                    return
                message = handle.conn.recv()
            except (EOFError, OSError):
                self._on_death(handle, cause="pipe_closed")
                return
            now = time.monotonic()
            tag = message[0]
            if tag == "ready":
                handle.ready = True
                handle.last_beat = now
            elif tag == "heartbeat":
                if self.metrics is not None:
                    self.metrics.observe(
                        HEARTBEAT_AGE_METRIC, now - handle.last_beat
                    )
                handle.last_beat = now
                # The live-telemetry piggyback (message[3]) is optional:
                # pre-live workers send 3-tuples and still supervise fine.
                if len(message) > 3:
                    self._live_update(handle, message[3])
            elif tag == "done":
                handle.last_beat = now
                self._on_done(handle, message[1], message[2], now)
            elif tag == "failed":
                handle.last_beat = now
                self._on_failed(handle, message[1], message[2], now)

    def _worker_label(self, handle: _WorkerHandle) -> str:
        return f"w{handle.worker_id}"

    def _live_update(self, handle: _WorkerHandle, extras) -> None:
        """Fold one heartbeat's telemetry piggyback into our registry."""
        if self.metrics is None or not isinstance(extras, dict):
            return
        worker = self._worker_label(handle)
        if self._merger is not None:
            self._merger.apply(worker, extras.get("snapshot"))
        obs_live.record_worker_health(
            self.metrics,
            worker,
            heartbeat_age=0.0,
            leased=handle.lease is not None,
            jobs_in_flight=1 if handle.lease is not None else 0,
            rss=extras.get("rss"),
            jobs_done=extras.get("jobs_done"),
        )

    def _release(self, handle: _WorkerHandle, job_id) -> Optional[_Job]:
        lease = handle.lease
        if lease is None or lease.job.key != job_id:
            return None  # stale message (job was already re-leased)
        handle.lease = None
        return lease.job

    def _on_done(self, handle: _WorkerHandle, job_id, result, now) -> None:
        granted = handle.lease.granted if handle.lease is not None else now
        job = self._release(handle, job_id)
        if job is None or job.key in self._results:
            return
        handle.jobs_done += 1
        if self.metrics is not None:
            self.metrics.observe(JOB_SECONDS_METRIC, now - granted)
            self.metrics.inc(JOBS_METRIC, outcome="ok")
        self._resolve(job, "ok", result)

    def _on_failed(self, handle: _WorkerHandle, job_id, info, now) -> None:
        """The job raised inside a healthy worker (the ``raise`` path)."""
        job = self._release(handle, job_id)
        if job is None or job.key in self._results:
            return
        job.attempts += 1
        job.last_error = {
            key: info.get(key)
            for key in ("error_type", "error", "traceback", "fault_kind")
        }
        if job.attempts > self.config.retries:
            self._fail(job, self._failure_from_info(job))
            if self.tracer is not None:
                self.tracer.event(
                    "task_failed",
                    task=job.name,
                    attempts=job.attempts,
                    error_type=job.last_error["error_type"],
                )
            return
        self._requeue(job, cause="error", now=now)

    # -- failure / recovery ----------------------------------------------

    def _failure_from_info(self, job: _Job) -> TrialFailure:
        info = job.last_error or {}
        return TrialFailure(
            function=job.name,
            stage="worker",
            error_type=info.get("error_type", "WorkerFailure"),
            error=info.get("error", "fleet job failed"),
            traceback=info.get("traceback", ""),
            fault_kind=info.get("fault_kind"),
            attempts=max(1, job.attempts),
        )

    def _fatal_failure(self, job: _Job, cause: str, quarantined: bool) -> TrialFailure:
        error_type = "LeaseExpired" if cause in ("stall", "deadline") else "WorkerDeath"
        detail = "quarantined as a poison job" if quarantined else "written off"
        # The fault plane is a pure decider, so the supervisor can name
        # the fault that (deterministically) took the worker down even
        # though the worker never got to report it.
        plane = job.payload[4]
        fault_kind = plane.worker_fault(job.name) if plane is not None else None
        return TrialFailure(
            function=job.name,
            stage="worker",
            error_type=error_type,
            error=(
                f"fleet lease lost ({cause}) {job.fatal} time(s); {detail}"
            ),
            fault_kind=fault_kind,
            attempts=max(1, job.attempts),
        )

    def _requeue(self, job: _Job, cause: str, now: float) -> None:
        delay = retry_delay(
            self.config.backoff, max(0, job.attempts - 1), job.name
        )
        self.requeues += 1
        if self.tracer is not None:
            self.tracer.event(
                "lease_requeue",
                task=job.name,
                attempt=job.attempts,
                cause=cause,
                delay=round(delay, 4),
            )
        if self.metrics is not None:
            self.metrics.inc(REQUEUES_METRIC)
        self._park(job, delay, now)

    def _fail(self, job: _Job, failure: TrialFailure) -> None:
        self.jobs_failed += 1
        if self.metrics is not None:
            self.metrics.inc(JOBS_METRIC, outcome="failed")
        self._resolve(job, "failed", failure)

    def _resolve(self, job: _Job, status: str, value) -> None:
        self._results[job.key] = (status, value)
        if status == "ok":
            self.jobs_ok += 1
        if self._on_complete is not None:
            self._on_complete(job.key, status, value)

    def _on_death(self, handle: _WorkerHandle, cause: str) -> None:
        """A worker is gone: bury it, triage its lease, respawn *one*."""
        self._workers.pop(handle.worker_id, None)
        try:
            handle.conn.close()
        except OSError:
            pass
        exitcode = handle.process.exitcode
        lease = handle.lease
        if self.tracer is not None:
            self.tracer.event(
                "worker_death",
                worker=handle.worker_id,
                cause=cause,
                exitcode=exitcode,
                task=lease.job.name if lease is not None else None,
            )
        if lease is not None and lease.job.key not in self._results:
            job = lease.job
            job.attempts += 1
            job.fatal += 1
            if job.fatal >= self.config.quarantine_after:
                self.quarantined.append(job.name)
                if self.tracer is not None:
                    self.tracer.event(
                        "job_quarantined",
                        task=job.name,
                        fatal=job.fatal,
                        cause=cause,
                    )
                if self.metrics is not None:
                    self.metrics.inc(QUARANTINED_METRIC)
                self._fail(
                    job, self._fatal_failure(job, cause, quarantined=True)
                )
            else:
                self._requeue(job, cause=cause, now=time.monotonic())
        if not self._shutting_down:
            unresolved = (
                len(self._pending) + len(self._parked)
                + sum(
                    1 for w in self._workers.values() if w.lease is not None
                )
            )
            if unresolved:
                self._spawn(respawn=True)

    def _expire(self, handle: _WorkerHandle, cause: str) -> None:
        """A leased worker went quiet: kill it and run the death path."""
        self.lease_expiries += 1
        if self.tracer is not None:
            lease = handle.lease
            self.tracer.event(
                "lease_expired",
                worker=handle.worker_id,
                cause=cause,
                task=lease.job.name if lease is not None else None,
            )
        if self.metrics is not None:
            self.metrics.inc(LEASE_EXPIRIES_METRIC)
        handle.process.kill()
        handle.process.join(timeout=1.0)
        self._on_death(handle, cause=cause)

    def _check_health(self, now: float) -> None:
        for handle in list(self._workers.values()):
            if handle.worker_id not in self._workers:
                continue
            # Age the health gauges from the supervisor's clock so a
            # wedged worker shows a *growing* heartbeat age between
            # beats, not its last happy value.
            obs_live.record_worker_health(
                self.metrics,
                self._worker_label(handle),
                heartbeat_age=now - handle.last_beat,
                leased=handle.lease is not None,
                jobs_in_flight=1 if handle.lease is not None else 0,
            )
            if not handle.process.is_alive():
                # Drain any final messages (a result may have raced the
                # exit) before declaring death.
                self._drain(handle)
                if handle.worker_id in self._workers:
                    self._on_death(handle, cause="exit")
                continue
            if (
                not handle.ready
                and now - handle.spawned > self.config.boot_timeout
            ):
                self._expire(handle, cause="boot_timeout")
                continue
            lease = handle.lease
            if lease is None:
                continue
            if now - handle.last_beat > self.config.heartbeat_timeout:
                self._expire(handle, cause="stall")
            elif lease.deadline is not None and now > lease.deadline:
                self._expire(handle, cause="deadline")


# ---------------------------------------------------------------------------
# form_many_parallel's fleet twin
# ---------------------------------------------------------------------------


def form_many_fleet(
    items: Sequence[tuple],
    max_workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
    retries: int = DEFAULT_RETRIES,
    backoff: float = DEFAULT_BACKOFF,
    config: Optional[FleetConfig] = None,
    **form_kwargs,
) -> list[tuple[Module, FormationReport]]:
    """Form many (module, profile) pairs on a persistent worker fleet.

    Drop-in for :func:`~repro.harness.parallel.form_many_parallel` (it is
    the ``driver="fleet"`` implementation): same input shape, same
    result order, same failure semantics at the interface — a failed
    module task returns the caller's original module with an all-
    ``failed_safe`` report.  What differs is what failure *costs*: a
    worker death respawns one worker and requeues one lease; there is no
    broken-pool mode and no blanket serial fallback.

    Auto mode (``max_workers=None``) stays sequential for trivially
    small inputs, like the pool driver.
    """
    record_events = form_kwargs.get("record_events", True)
    if len(items) <= 1 or _auto_serial(
        (module for module, _ in items), max_workers
    ):
        out = []
        for module, profile in items:
            report = form_module(module, profile=profile, **form_kwargs)
            out.append((module, report))
        return out

    if config is None:
        config = FleetConfig(
            workers=max_workers or DEFAULT_FLEET_WORKERS,
            lease_timeout=task_timeout,
            retries=retries,
            backoff=backoff,
        )
    plane = active_plane()
    tracer = obs_trace.active_tracer()
    trace_on = tracer is not None
    jobs = [
        _Job(
            key=index,
            name=module.name,
            size=module.size(),
            payload=(
                "module", module, profile, form_kwargs, plane, trace_on
            ),
        )
        for index, (module, profile) in enumerate(items)
    ]
    with Fleet(config) as fleet:
        results = fleet.run(jobs)

    out: list[tuple[Module, FormationReport]] = []
    for index, (module, _profile) in enumerate(items):
        status, value = results[index]
        if status == "failed":
            copy = module.copy()
            out.append((copy, _module_failed_safe(copy, value, record_events)))
        else:
            formed, report, fragment = value
            if tracer is not None and fragment:
                tracer.absorb(fragment, task=formed.name)
            out.append((formed, report))
    return out


# ---------------------------------------------------------------------------
# The run journal (resume machinery)
# ---------------------------------------------------------------------------

JOURNAL_VERSION = 1


class RunJournal:
    """Append-only JSONL journal of completed fleet jobs.

    Line 1 is a header binding the journal to a *corpus configuration
    fingerprint*; each further line is one completed job's durable entry
    (per-function decision fingerprints, counters, composition — the
    exact shape a ledger run record wants).  Appends are flushed and
    fsynced line-at-a-time, so a killed driver leaves at worst one torn
    tail line, which :meth:`load` drops (that job simply re-runs on
    resume).
    """

    def __init__(self, path: str):
        self.path = path

    def load(self) -> tuple[Optional[dict], dict[str, dict]]:
        """``(header, {job: entry})``; ``(None, {})`` for no/empty file."""
        try:
            with open(self.path) as handle:
                lines = handle.readlines()
        except OSError:
            return None, {}
        header = None
        entries: dict[str, dict] = {}
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                if index == len(lines) - 1:
                    continue  # torn tail from a killed driver: re-run it
                raise FleetError(
                    f"journal {self.path!r} line {index + 1} is corrupt "
                    "(not valid JSON and not the final line)"
                )
            if index == 0:
                if record.get("journal") != "fleet":
                    raise FleetError(
                        f"{self.path!r} is not a fleet journal"
                    )
                header = record
            else:
                entries[record["job"]] = record["entry"]
        return header, entries

    def create(self, config_fingerprint: str) -> None:
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(self.path, "w") as handle:
            json.dump(
                {
                    "journal": "fleet",
                    "version": JOURNAL_VERSION,
                    "config_fingerprint": config_fingerprint,
                    "created": utc_timestamp(),
                },
                handle,
                sort_keys=True,
            )
            handle.write("\n")

    def resume_or_create(
        self, config_fingerprint: str, resume: bool
    ) -> dict[str, dict]:
        """Completed entries to skip (resume) — or a fresh journal."""
        header, entries = self.load()
        if resume:
            if header is None:
                raise FleetError(
                    f"cannot resume: journal {self.path!r} is missing or "
                    "empty (run without --resume first)"
                )
            if header.get("config_fingerprint") != config_fingerprint:
                raise FleetError(
                    f"cannot resume from {self.path!r}: its corpus "
                    "configuration differs from this run's "
                    f"({header.get('config_fingerprint')} != "
                    f"{config_fingerprint})"
                )
            return entries
        self.create(config_fingerprint)
        return {}

    def append(self, job_key: str, entry: dict) -> None:
        with open(self.path, "a") as handle:
            json.dump({"job": job_key, "entry": entry}, handle, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())


# ---------------------------------------------------------------------------
# Corpus runs: durable entries, records, resume verification
# ---------------------------------------------------------------------------

#: Fingerprint of a function that made no decisions (or never formed).
_EMPTY_FINGERPRINT = fingerprint_of(())


def _composition(func) -> dict:
    sizes = [len(block) for block in func.blocks.values()]
    return {
        "blocks": len(sizes),
        "instrs": sum(sizes),
        "max_block": max(sizes, default=0),
    }


def _phase_totals(trace: FormationTrace) -> dict[str, float]:
    from repro.harness.tracecmd import phase_table

    totals: dict[str, float] = {}
    for row in phase_table(trace).values():
        for phase, dur in row.items():
            totals[phase] = totals.get(phase, 0.0) + dur
    return {phase: round(totals[phase], 6) for phase in sorted(totals)}


def job_entry_ok(name: str, module: Module, report, fragment) -> dict:
    """The durable journal entry of one successfully formed module job."""
    trace = FormationTrace(list(fragment or ()))
    fingerprints = decision_fingerprints(trace, prefix=f"{name}:")
    functions: dict[str, dict] = {}
    log_stats: dict[str, dict] = {}
    for func in module:
        key = f"{name}:{func.name}"
        freport = report.functions[func.name]
        bucket = fingerprints.get(
            key, {"decisions": [], "fingerprint": _EMPTY_FINGERPRINT}
        )
        entry = {
            "fingerprint": bucket["fingerprint"],
            "decisions": bucket["decisions"],
            "merges": freport.stats.merges,
            "mtup": list(freport.stats.mtup),
            "attempts": freport.stats.attempts,
            "status": freport.status.value,
        }
        entry.update(_composition(func))
        functions[key] = entry
        stats = {
            "attempts": freport.stats.attempts,
            "stats_fingerprint": freport.stats.decision_fingerprint(),
            "status": freport.status.value,
        }
        if freport.status.value == "ok":
            stats["merges"] = freport.stats.merges
            stats["mtup"] = list(freport.stats.mtup)
        log_stats[key] = stats
    return {
        "status": "ok",
        "functions": functions,
        "merges": report.stats.merges,
        "mtup": list(report.stats.mtup),
        "attempts": report.stats.attempts,
        "phase_time_s": _phase_totals(trace),
        "events": len(trace),
        "event_counts": trace.event_counts(),
        # The flight-recorder projection of the same worker fragment:
        # decision logs ship back with task results exactly like trace
        # fragments, so a finished corpus run is replayable/bisectable.
        "decision_log": attach_stats(
            log_from_trace(trace, prefix=f"{name}:"), log_stats
        ),
    }


def job_entry_failed(name: str, module: Module, failure: TrialFailure) -> dict:
    """The durable entry of a written-off job: every function kept its
    pre-formation CFG (``failed_safe``), decisions empty by definition."""
    functions: dict[str, dict] = {}
    for func in module:
        entry = {
            "fingerprint": _EMPTY_FINGERPRINT,
            "decisions": [],
            "merges": 0,
            "mtup": [0, 0, 0, 0],
            "attempts": 0,
            "status": "failed_safe",
        }
        entry.update(_composition(func))
        functions[f"{name}:{func.name}"] = entry
    return {
        "status": "failed_safe",
        "functions": functions,
        "merges": 0,
        "mtup": [0, 0, 0, 0],
        "attempts": 0,
        "phase_time_s": {},
        "events": 0,
        "event_counts": {},
        # Written-off jobs keep their pre-formation CFG, so the recorded
        # stream is empty per function — a bisect against a clean run
        # then points at the first decision the failed run never made.
        "decision_log": {
            f"{name}:{func.name}": {
                "records": [],
                "fingerprint": _EMPTY_FINGERPRINT,
                "status": "failed_safe",
            }
            for func in module
        },
        "failure": {
            "error_type": failure.error_type,
            "error": failure.error,
            "fault_kind": failure.fault_kind,
            "attempts": failure.attempts,
        },
    }


def corpus_record(
    entries: dict[str, dict],
    workloads: Sequence[str],
    kind: str = "fleet",
    label: Optional[str] = None,
    fleet_stats: Optional[dict] = None,
) -> dict:
    """Assemble (and validate) a schema-versioned ledger run record from
    journal entries — the merged record a resumed run is gated on."""
    functions: dict[str, dict] = {}
    phase_totals: dict[str, float] = {}
    event_counts: dict[str, int] = {}
    merges = 0
    attempts = 0
    total_events = 0
    mtup = [0, 0, 0, 0]
    for name in workloads:
        entry = entries[name]
        functions.update(entry["functions"])
        merges += entry["merges"]
        attempts += entry["attempts"]
        mtup = [a + b for a, b in zip(mtup, entry["mtup"])]
        total_events += entry.get("events", 0)
        for phase, dur in entry.get("phase_time_s", {}).items():
            phase_totals[phase] = phase_totals.get(phase, 0.0) + dur
        for event_name, count in entry.get("event_counts", {}).items():
            event_counts[event_name] = (
                event_counts.get(event_name, 0) + count
            )
    record = {
        "schema_version": RECORD_SCHEMA_VERSION,
        "kind": kind,
        "label": label,
        "timestamp": utc_timestamp(),
        "machine": machine_metadata(),
        "commit": commit_metadata(),
        "workloads": list(workloads),
        "merges": merges,
        "mtup": mtup,
        "attempts": attempts,
        "functions": functions,
        "phase_time_s": {
            phase: round(dur, 6)
            for phase, dur in sorted(phase_totals.items())
        },
        "telemetry": {
            "events": total_events,
            "event_counts": event_counts,
            "fleet": fleet_stats or {},
        },
    }
    validate_record(record)
    return record


# -- corpus construction -----------------------------------------------------


def corpus_config_fingerprint(
    corpus: str, modules: int, seed: int, plane: Optional[FaultPlane]
) -> str:
    """Content address of a corpus run's *decision-relevant* inputs.

    Worker count, timeouts and journal paths are deliberately excluded:
    they change scheduling, never decisions, and a resume is allowed to
    use a different fleet width.  The fault plane is included — faults
    change outcomes.
    """
    spec = {
        "corpus": corpus,
        "modules": modules,
        "seed": seed,
        "plane": None
        if plane is None
        else {
            "rate": plane.rate,
            "seed": plane.seed,
            "kinds": list(plane.kinds),
            "worker_kinds": list(plane.worker_kinds),
            "stall_seconds": plane.stall_seconds,
        },
    }
    blob = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def build_corpus(
    corpus: str = "10x", modules: int = 12, seed: int = 2006
) -> list[tuple[str, Module, object]]:
    """``(name, module, profile)`` triples for a corpus specifier.

    ``corpus`` is a scaling tier (``10x``/``50x``/``200x`` — ``modules``
    deterministic synthetic programs of that size, seeds ``seed+i``) or
    ``"spec"`` (the 19 SPEC workloads).  Deterministic end to end, so a
    resumed driver rebuilds the identical corpus.
    """
    from repro.harness.bench import SCALING_TIERS
    from repro.workloads.generators import random_inputs, scaled_program
    from repro.workloads.spec import SPEC_BENCHMARKS, SPEC_ORDER

    out = []
    if corpus == "spec":
        for name in SPEC_ORDER:
            workload = SPEC_BENCHMARKS[name]
            module = workload.module()
            module.name = name
            profile = collect_profile(
                module, args=workload.args, preload=workload.preload
            )
            out.append((name, module, profile))
        return out
    tiers = dict(SCALING_TIERS)
    if corpus not in tiers:
        raise FleetError(
            f"unknown corpus {corpus!r}; want 'spec' or a scaling tier "
            f"({', '.join(label for label, _ in SCALING_TIERS)})"
        )
    target = tiers[corpus]
    for index in range(modules):
        module = scaled_program(target, seed + index)
        module.name = f"{corpus}_{index:03d}"
        profile = collect_profile(module, args=random_inputs(seed + index))
        out.append((module.name, module, profile))
    return out


@dataclass
class CorpusRunResult:
    """Outcome of one (possibly resumed, possibly truncated) corpus run."""

    entries: dict[str, dict]
    workloads: list[str]
    resumed: list[str] = field(default_factory=list)
    completed: list[str] = field(default_factory=list)
    unfinished: list[str] = field(default_factory=list)
    fleet_stats: dict = field(default_factory=dict)
    journal_path: Optional[str] = None

    @property
    def finished(self) -> bool:
        return not self.unfinished

    def record(self, kind: str = "fleet", label: Optional[str] = None) -> dict:
        if not self.finished:
            raise FleetError(
                "cannot build a run record from an unfinished corpus run "
                f"({len(self.unfinished)} job(s) outstanding; resume first)"
            )
        return corpus_record(
            self.entries, self.workloads, kind=kind, label=label,
            fleet_stats=self.fleet_stats,
        )

    def decision_log_functions(self) -> Optional[dict]:
        """The merged per-function flight-recorder logs of this run.

        ``None`` when any entry predates the recorder (a resumed journal
        written by an older version): a partial log would bisect as
        spurious missing-function divergences, so completeness is
        all-or-nothing.
        """
        merged: dict[str, dict] = {}
        for name in self.workloads:
            entry = self.entries.get(name)
            if entry is None or "decision_log" not in entry:
                return None
            merged.update(entry["decision_log"])
        return merged


def run_fleet_corpus(
    corpus_items: Sequence[tuple[str, Module, object]],
    config: Optional[FleetConfig] = None,
    plane: Optional[FaultPlane] = None,
    journal_path: Optional[str] = None,
    resume: bool = False,
    config_fingerprint: str = "",
    stop_after: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
    **form_kwargs,
) -> CorpusRunResult:
    """Form a corpus on the fleet, journalling every completed job.

    Jobs run traced in the workers (decision fingerprints are the
    journal's payload) with ``record_events=False`` (the counters, not
    the event list, are what the durable entry keeps).  With a
    ``journal_path``, completed jobs are appended as they land and —
    with ``resume=True`` — journalled jobs from a previous (killed)
    driver are skipped, not re-formed.

    ``metrics`` (optional) is the supervisor-side registry the live
    heartbeat stream merges into — pass the registry backing an
    ``--expose`` endpoint to watch the run mid-flight.  Defaults to the
    active tracer's registry, exactly like :class:`Fleet`.
    """
    form_kwargs.setdefault("record_events", False)
    journal = RunJournal(journal_path) if journal_path else None
    done: dict[str, dict] = {}
    if journal is not None:
        done = journal.resume_or_create(config_fingerprint, resume=resume)
    by_name = {name: module for name, module, _ in corpus_items}
    todo = [
        (name, module, profile)
        for name, module, profile in corpus_items
        if name not in done
    ]
    jobs = [
        _Job(
            key=name,
            name=name,
            size=module.size(),
            payload=("module", module, profile, dict(form_kwargs), plane, True),
        )
        for name, module, profile in todo
    ]

    entries: dict[str, dict] = dict(done)
    completed: list[str] = []

    def on_complete(key, status, value):
        if status == "ok":
            formed, report, fragment = value
            entry = job_entry_ok(key, formed, report, fragment)
        else:
            entry = job_entry_failed(key, by_name[key], value)
        entries[key] = entry
        completed.append(key)
        if journal is not None:
            journal.append(key, entry)

    fleet_stats: dict = {}
    if jobs:
        with Fleet(config, metrics=metrics) as fleet:
            fleet.run(jobs, on_complete=on_complete, stop_after=stop_after)
            fleet_stats = fleet.stats()

    workloads = [name for name, _, _ in corpus_items]
    return CorpusRunResult(
        entries=entries,
        workloads=workloads,
        resumed=sorted(done),
        completed=completed,
        unfinished=[name for name in workloads if name not in entries],
        fleet_stats=fleet_stats,
        journal_path=journal_path,
    )


def serial_corpus_entries(
    corpus_items: Sequence[tuple[str, Module, object]], **form_kwargs
) -> dict[str, dict]:
    """The uninterrupted in-process reference run: identical entry shape,
    formed one module at a time under a private tracer."""
    form_kwargs.setdefault("record_events", False)
    entries: dict[str, dict] = {}
    for name, module, profile in corpus_items:
        tracer = Tracer(sinks=(MemorySink(),))
        with tracing(tracer):
            report = form_module(module, profile=profile, **form_kwargs)
        trace = tracer.finish()
        entries[name] = job_entry_ok(name, module, report, trace.events)
    return entries


def compare_against_serial(
    entries: dict[str, dict],
    serial: dict[str, dict],
    skip: Sequence[str] = (),
) -> list[str]:
    """Fingerprint-level divergences between a fleet run and the serial
    reference, as human-readable strings (empty == bit-identical).

    ``skip`` names jobs exempt from comparison (fault-touched modules in
    a drill: their outcome is *supposed* to differ from a clean run).
    """
    problems: list[str] = []
    skipset = set(skip)
    for name, serial_entry in serial.items():
        if name in skipset:
            continue
        entry = entries.get(name)
        if entry is None:
            problems.append(f"{name}: missing from the fleet run")
            continue
        for key, serial_func in serial_entry["functions"].items():
            func = entry["functions"].get(key)
            if func is None:
                problems.append(f"{key}: function missing from fleet entry")
            elif func["fingerprint"] != serial_func["fingerprint"]:
                problems.append(
                    f"{key}: decision fingerprint {func['fingerprint']} != "
                    f"serial {serial_func['fingerprint']}"
                )
            elif func["status"] != serial_func["status"]:
                problems.append(
                    f"{key}: status {func['status']} != "
                    f"serial {serial_func['status']}"
                )
    return problems


# ---------------------------------------------------------------------------
# The suite-wide fleet drill
# ---------------------------------------------------------------------------


def run_fleet_drill(
    corpus: str = "10x",
    modules: int = 12,
    seed: int = 2006,
    workers: int = 4,
    rate: float = 0.1,
    # The default seed is picked so the 10%-rate plane actually lands both
    # fatal kinds on the default 12-module corpus (one kill, one stall) —
    # a drill whose plane touches nothing proves nothing.
    fault_seed: int = 2,
    worker_kinds: tuple = ("raise", "stall", "kill"),
    stall_seconds: float = 3.0,
    config: Optional[FleetConfig] = None,
) -> dict:
    """Kill/stall/raise containment proof for the fleet driver.

    Forms the corpus twice — once in-process (the clean reference), once
    on the fleet under a seeded worker-fault plane — and checks:

    - every module the plane did **not** touch formed ``ok`` with
      decision fingerprints byte-identical to the serial reference (no
      blanket degradation: one poison job costs one job);
    - every touched module failed *safe* (quarantined or retried out),
      never half-formed;
    - worker deaths actually healed: respawns > 0 whenever a
      ``kill``/``stall`` fault fired, and the fleet never fell back to
      in-process serial formation (it has no such mode — the counter
      exists to prove the run stayed parallel).
    """
    corpus_items = build_corpus(corpus, modules, seed)
    serial = serial_corpus_entries(
        [(name, module.copy(), profile) for name, module, profile in corpus_items]
    )

    plane = FaultPlane(
        rate=rate,
        seed=fault_seed,
        kinds=(),
        worker_kinds=tuple(worker_kinds),
        stall_seconds=stall_seconds,
    )
    # The plane is a pure decider, so the drill knows its blast radius
    # up front — which modules *will* be hit, and how.
    touched = {
        name: plane.worker_fault(name)
        for name, _, _ in corpus_items
        if plane.worker_fault(name) is not None
    }
    if config is None:
        config = FleetConfig(
            workers=workers,
            heartbeat_interval=0.1,
            heartbeat_timeout=1.0,
            retries=1,
            backoff=0.02,
        )
    result = run_fleet_corpus(corpus_items, config=config, plane=plane)

    fatal_kinds = {"kill", "stall"}
    expect_respawns = any(kind in fatal_kinds for kind in touched.values())
    stats = result.fleet_stats
    escaped = [
        name
        for name in touched
        if any(
            func["status"] == "ok"
            for func in result.entries[name]["functions"].values()
        )
    ]
    drift = compare_against_serial(
        result.entries, serial, skip=tuple(touched)
    )
    problems: list[str] = list(drift)
    for name in escaped:
        problems.append(
            f"{name}: fault-touched module has ok functions (escaped)"
        )
    if expect_respawns and stats.get("respawns", 0) == 0:
        problems.append(
            "kill/stall faults fired but the fleet never respawned a worker"
        )
    if rate > 0 and worker_kinds and not touched:
        problems.append(
            "the fault plane touched no module: this drill exercised "
            "nothing (pick a different fault seed/rate)"
        )
    if not result.finished:
        problems.append(f"unfinished jobs: {', '.join(result.unfinished)}")

    ok = not problems
    report_lines = [
        f"fleet drill: corpus={corpus} modules={len(result.workloads)} "
        f"workers={config.workers} rate={rate} seed={fault_seed} "
        f"kinds={'/'.join(worker_kinds)}",
        f"  touched: {len(touched)} "
        + (
            "("
            + ", ".join(f"{n}:{k}" for n, k in sorted(touched.items()))
            + ")"
            if touched
            else ""
        ),
        f"  respawns: {stats.get('respawns', 0)}, "
        f"requeues: {stats.get('requeues', 0)}, "
        f"lease expiries: {stats.get('lease_expiries', 0)}, "
        f"quarantined: {len(stats.get('quarantined', ()))}",
        f"  jobs: {stats.get('jobs_ok', 0)} ok, "
        f"{stats.get('jobs_failed', 0)} failed_safe, "
        "serial fallbacks: 0 (the fleet has no such mode)",
        f"  decision drift vs serial (untouched modules): {len(drift)}",
    ]
    for problem in problems:
        report_lines.append(f"  PROBLEM: {problem}")
    report_lines.append("fleet drill: PASS" if ok else "fleet drill: FAIL")
    return {
        "ok": ok,
        "touched": touched,
        "escaped": escaped,
        "drift": drift,
        "stats": stats,
        "entries": result.entries,
        "report": "\n".join(report_lines),
    }
