"""Formation performance benchmark (``BENCH_formation.json``).

Times end-to-end hyperblock formation over the SPEC workload suite in
three configurations:

- ``sequential_fast``   — ``form_module`` with the fast path (default),
- ``sequential_legacy`` — ``form_module(fast_path=False)`` under the
  legacy (object-graph) IR backend: the all-machinery-off control,
- ``parallel``          — :func:`repro.harness.parallel.form_many_parallel`.

Module construction and profile collection are *not* timed: the benchmark
isolates formation, which is what this repo's fast path optimizes.  Each
configuration is timed best-of-``repeat`` on fresh modules.  Merge counts
are asserted identical across configurations — a formation speedup that
changes the formed IR is a bug, not a win.

``BASELINE_PRE_PR_S`` pins the wall time of the same sequential loop
measured before the fast-path work (commit d482983), so the headline
``speedup_vs_pre_pr`` survives the old code no longer being checked out.
"""

from __future__ import annotations

import datetime
import json
import time
from typing import Optional

from repro.core.convergent import form_module
from repro.harness.parallel import form_many_parallel
from repro.ir import arena as _ir_arena
from repro.profiles import collect_profile
from repro.workloads.generators import random_inputs, scaled_program
from repro.workloads.spec import SPEC_BENCHMARKS, SPEC_ORDER

#: Wall time of the identical sequential loop at commit d482983 (pre-PR),
#: best of 3 on the reference container.  Kept as data so the speedup the
#: fast path delivers stays measurable after the old code is gone.
BASELINE_PRE_PR_S = 0.4773
BASELINE_COMMIT = "d482983"

#: Same loop at the end of the previous PR (commit 5199c39, set-based
#: dataflow + incremental analyses), as recorded in its
#: BENCH_formation.json.  The dense-bitset engine is compared against
#: this, not just the pre-PR number.
BASELINE_PR1_S = 0.2253
BASELINE_PR1_COMMIT = "5199c39"
#: The PR-1 trial-memo hit rate over the full suite (4 hits / 406
#: attempts): re-keying on the canonical live-out mask cannot lift it on
#: the SPEC suite — see the ``trial_memo`` notes in the bench JSON.
BASELINE_PR1_TRIAL_HIT_RATE = 0.0099

#: Synthetic scaling tiers: (label, target instruction count).  Targets
#: are multiples of the mean SPEC function size (44 instructions), so the
#: tiers read as "a SPEC workload, N times larger".
SCALING_TIERS = (
    ("10x", 440),
    ("50x", 2200),
    ("200x", 8800),
)
#: Deterministic seed for the scaling-tier generator.
SCALING_SEED = 2006

#: Small subset for CI smoke runs (--quick): a mix of loopy and branchy
#: workloads, not a representative sample — quick mode never compares
#: against the pre-PR baseline.
QUICK_SUBSET = ("ammp", "art", "bzip2", "equake", "mcf")


def prepare_workloads(subset: Optional[list[str]] = None):
    """Build modules and collect profiles (untimed setup)."""
    names = list(subset) if subset else list(SPEC_ORDER)
    unknown = [name for name in names if name not in SPEC_BENCHMARKS]
    if unknown:
        raise SystemExit(
            f"unknown workload(s): {', '.join(unknown)}; "
            f"available: {', '.join(SPEC_ORDER)}"
        )
    prepared = []
    for name in names:
        workload = SPEC_BENCHMARKS[name]
        module = workload.module()
        profile = collect_profile(
            module, args=workload.args, preload=workload.preload
        )
        prepared.append((name, workload, profile))
    return prepared


def _time_sequential(prepared, fast_path: bool, repeat: int,
                     failsafe: bool = False):
    """Best-of-``repeat`` wall time; also returns the last run's cache
    counters (aggregated outside the timed window, ``None`` on the legacy
    path, which keeps no caches).

    ``failsafe`` defaults to *off* here (unlike the drivers): the pinned
    baselines predate the trial guards, so the raw configurations must
    keep measuring ungated formation.  The ``guarded`` configuration
    times ``failsafe=True`` explicitly to price the transaction overhead.
    """
    from repro.core.merge import FormationCacheStats

    best = None
    merges = mtup = None
    cache = None
    for _ in range(repeat):
        modules = [(w.module(), p) for _, w, p in prepared]
        start = time.perf_counter()
        total_merges = 0
        total_mtup = (0, 0, 0, 0)
        all_stats = []
        for module, profile in modules:
            stats = form_module(
                module, profile=profile, fast_path=fast_path,
                record_events=False, failsafe=failsafe,
            )
            total_merges += stats.merges
            total_mtup = tuple(
                a + b for a, b in zip(total_mtup, stats.mtup)
            )
            all_stats.append(stats)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
        merges, mtup = total_merges, total_mtup
        if fast_path:
            total = FormationCacheStats()
            attempts = 0
            for stats in all_stats:
                attempts += stats.attempts
                if stats.cache is not None:
                    total.add(stats.cache)
            cache = _cache_dict(total, attempts)
    return best, merges, mtup, cache


def _cache_dict(total, attempts: int) -> dict:
    result = total.as_dict()
    result["trial_hit_rate"] = round(total.trial_hit_rate, 4)
    result["attempts"] = attempts
    hits = total.trial_hits
    rejections = hits + total.trial_stores
    # Hit rate over *rejection-outcome* trials only.  Committed merges can
    # never hit the memo (only rejections are memoized), so dividing by
    # all attempts understates how much of the memoizable work is reused.
    result["trial_hit_rate_rejections"] = round(
        hits / rejections if rejections else 0.0, 4
    )
    return result


def _collect_telemetry(prepared, registry=None) -> dict:
    """One *untimed* traced pass over the suite: the bench JSON's
    ``telemetry`` section.

    Phase shares are computed over span self time — ``liveness`` nests
    inside ``commit``, so commit is charged its total minus the nested
    liveness (see :func:`repro.harness.tracecmd.phase_table`) and the
    shares sum to ~100% of phase-attributed time.

    ``registry`` lets the caller supply the metrics registry the traced
    pass feeds — ``bench --expose`` passes the exposed one, so a scraper
    watching the endpoint sees ``formation_*`` series fill in live.
    """
    from repro.harness.tracecmd import phase_table, rejection_breakdown
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.sink import MemorySink
    from repro.obs.trace import Tracer, tracing

    if registry is None:
        registry = MetricsRegistry()
    tracer = Tracer(sinks=(MemorySink(),), metrics=registry)
    with tracing(tracer):
        for _, workload, profile in prepared:
            form_module(
                workload.module(), profile=profile, record_events=False
            )
    trace = tracer.finish()
    phases: dict[str, float] = {}
    for row in phase_table(trace).values():
        for phase, dur in row.items():
            phases[phase] = phases.get(phase, 0.0) + dur
    total = sum(phases.values())
    return {
        "events": len(trace),
        "dropped": trace.dropped,
        "event_counts": trace.event_counts(),
        "rejections": rejection_breakdown(trace),
        "phase_time_s": {
            phase: round(phases[phase], 6) for phase in sorted(phases)
        },
        "phase_shares": {
            phase: round(phases[phase] / total, 4) if total else 0.0
            for phase in sorted(phases)
        },
        # Arena counters accumulate per process; the delta over the traced
        # pass is not isolated, but backend identity and order-of-magnitude
        # encode/hit volumes are what the bench JSON needs to show.
        "arena": _arena_telemetry(),
    }


def _arena_telemetry() -> dict:
    from repro.ir import arena as _arena

    return {"backend": _arena.backend(), **_arena.STORE.counters()}


def _profile_formation(prepared, top: int = 20) -> list[dict]:
    """One cProfile'd pass over the suite: top-``top`` cumulative functions.

    Untimed relative to the benchmark configurations — profiling runs on
    fresh modules after the timed windows, so ``--profile`` never perturbs
    the recorded numbers.
    """
    import cProfile
    import pstats

    modules = [(w.module(), p) for _, w, p in prepared]
    profiler = cProfile.Profile()
    profiler.enable()
    for module, profile in modules:
        form_module(module, profile=profile, record_events=False)
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    rows: list[dict] = []
    for key in stats.fcn_list[:top]:
        cc, nc, tt, ct, _callers = stats.stats[key]
        filename, line, name = key
        rows.append(
            {
                "function": name,
                "location": f"{filename}:{line}",
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime_s": round(tt, 4),
                "cumtime_s": round(ct, 4),
            }
        )
    return rows


def _sample_profile_formation(
    prepared,
    hz: Optional[float] = None,
    top: int = 20,
    out_prefix: Optional[str] = None,
) -> dict:
    """One pass over the suite under the sampling profiler
    (``bench --sample-profile``).

    Like :func:`_profile_formation`, this runs on fresh modules *after*
    the timed windows, so it can never perturb the recorded numbers.  A
    private tracer is installed for the pass — not for its events but
    for its span-name stack, which is what attributes samples to
    formation phases.  With ``out_prefix``, collapsed-stack text and
    speedscope JSON are written next to the bench output.
    """
    from repro.obs.prof import (
        DEFAULT_HZ,
        SamplingProfiler,
        write_collapsed,
        write_speedscope,
    )
    from repro.obs.sink import MemorySink
    from repro.obs.trace import Tracer, tracing

    if hz is None:
        hz = DEFAULT_HZ
    modules = [(w.module(), p) for _, w, p in prepared]
    tracer = Tracer(sinks=(MemorySink(),))
    with tracing(tracer):
        with SamplingProfiler(hz=hz) as sampler:
            for module, profile in modules:
                form_module(module, profile=profile, record_events=False)
    prof = sampler.profile
    ranked = sorted(
        prof.self_times().items(), key=lambda item: (-item[1], item[0])
    )
    summary = {
        "hz": hz,
        "samples": prof.samples,
        "duration_s": round(prof.duration, 4),
        "phase_shares": {
            phase: round(share, 4)
            for phase, share in prof.phase_shares().items()
        },
        "top": [
            {
                "frame": label,
                "samples": count,
                "share": round(count / prof.samples, 4)
                if prof.samples
                else 0.0,
            }
            for label, count in ranked[:top]
        ],
    }
    if out_prefix:
        collapsed_path = f"{out_prefix}.collapsed.txt"
        speedscope_path = f"{out_prefix}.speedscope.json"
        write_collapsed(prof, collapsed_path)
        write_speedscope(prof, speedscope_path)
        summary["collapsed_path"] = collapsed_path
        summary["speedscope_path"] = speedscope_path
    return summary


def _mem_profile_formation(prepared, metrics=None) -> dict:
    """One pass over the suite under the per-phase allocation profiler
    (``bench --mem-profile``).

    Same discipline as the sampling profiler: fresh modules, *after* the
    timed windows, a private tracer whose phase spans drive the profiler
    — tracemalloc's per-allocation cost can never perturb the recorded
    timings.  The report carries per-phase net/self-net/peak bytes, the
    arena column-byte counters (the accounting the obs layer cannot see
    itself), and the process peak RSS for ceiling gates.
    """
    from repro.obs.live import rss_bytes
    from repro.obs.memprof import PhaseMemoryProfiler
    from repro.obs.sink import MemorySink
    from repro.obs.trace import Tracer, tracing

    modules = [(w.module(), p) for _, w, p in prepared]
    profiler = PhaseMemoryProfiler(metrics=metrics)
    tracer = Tracer(sinks=(MemorySink(),))
    tracer.memprof = profiler
    profiler.start()
    try:
        with tracing(tracer):
            for module, profile in modules:
                form_module(module, profile=profile, record_events=False)
    finally:
        profiler.stop()
        tracer.memprof = None
    profiler.attach_section("arena", _arena_telemetry())
    summary = profiler.report()
    summary["peak_rss_bytes"] = rss_bytes()
    return summary


def _time_parallel(
    prepared, workers: Optional[int], repeat: int, driver: str = "pool"
):
    best = None
    merges = None
    for _ in range(repeat):
        items = [(w.module(), p) for _, w, p in prepared]
        start = time.perf_counter()
        results = form_many_parallel(
            items, max_workers=workers, record_events=False, failsafe=False,
            driver=driver,
        )
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
        merges = sum(stats.merges for _, stats in results)
    return best, merges


# -- scaling tier -----------------------------------------------------------


class _ScaledWorkload:
    """Adapter giving a generated program the SPEC-workload interface."""

    def __init__(self, label: str, target_instrs: int, seed: int):
        self.label = label
        self.target_instrs = target_instrs
        self.seed = seed
        self.args = random_inputs(seed)
        self.preload = None

    def module(self):
        return scaled_program(self.target_instrs, self.seed)


def run_scale_bench(
    tiers=SCALING_TIERS, repeat: int = 1, seed: int = SCALING_SEED
) -> list[dict]:
    """Time formation on synthetic functions of growing size.

    For each tier the fast path and the invalidate-everything legacy path
    are timed on the *same* generated program (setup untimed); merge
    counts must agree or the run aborts.  The interesting column is
    ``speedup_fast_vs_legacy`` as a function of ``instrs``: the bitmask
    dataflow engine plus the incremental analyses pay off more the larger
    the function, because legacy re-analysis cost grows with function
    size while the fast path's per-merge work stays local.

    The legacy control is pinned to the *legacy IR backend* as well as
    ``fast_path=False``: it stands for the pre-optimization baseline, and
    letting it use the arena's view cache would hand the control the very
    machinery the comparison prices (an invalidate-everything run
    re-derives per-block facts constantly, so it benefits from encoded
    views even more than the fast path does).
    """
    from repro.ir import arena as _arena

    rows = []
    for label, target in tiers:
        workload = _ScaledWorkload(label, target, seed)
        module = workload.module()
        instrs = sum(
            sum(len(b.instrs) for b in f.blocks.values()) for f in module
        )
        blocks = sum(len(f.blocks) for f in module)
        profile = collect_profile(module, args=workload.args)
        prepared = [(label, workload, profile)]

        fast_s, fast_merges, fast_mtup, fast_cache = _time_sequential(
            prepared, True, repeat
        )
        prev = _arena.backend()
        try:
            _arena.set_backend("legacy")
            legacy_s, legacy_merges, legacy_mtup, _ = _time_sequential(
                prepared, False, repeat
            )
        finally:
            _arena.set_backend(prev)
        if (fast_merges, fast_mtup) != (legacy_merges, legacy_mtup):
            raise RuntimeError(
                f"scaling tier {label}: fast path changed formation "
                f"results: {(fast_merges, fast_mtup)} != "
                f"{(legacy_merges, legacy_mtup)}"
            )
        rows.append(
            {
                "tier": label,
                "target_instrs": target,
                "instrs": instrs,
                "blocks": blocks,
                "seed": seed,
                "repeat": repeat,
                "sequential_fast_s": round(fast_s, 4),
                "sequential_legacy_s": round(legacy_s, 4),
                "speedup_fast_vs_legacy": round(legacy_s / fast_s, 3),
                "merges": fast_merges,
                "mtup": list(fast_mtup),
                "cache": fast_cache,
            }
        )
    return rows


def run_backend_smoke(
    tier: str = "50x",
    repeat: int = 3,
    seed: int = SCALING_SEED,
    tolerance: float = 0.05,
    backends: Optional[tuple] = None,
) -> dict:
    """Accelerated-vs-legacy IR backend race on one scaling tier.

    Every accelerated backend available on this interpreter (``arena``
    columns, and the vectorized ``numpy`` tier when the extra is
    installed) runs the same generated program with the *same* formation
    configuration (``fast_path=True``) against the legacy object walkers;
    what varies is only the analysis backend.  Runs are interleaved and
    timed with CPU time, best-of-``repeat``, so machine noise hits all
    sides alike.  Raises if any backend's decisions differ or any
    accelerated backend is slower than legacy beyond ``tolerance`` (the
    regression gate CI runs at the 50x tier).  The caller's backend
    selection is restored on every exit path, including the failure
    raises — a failed smoke must never leak ``legacy`` into the rest of
    the process.
    """
    from repro.ir import arena as _arena

    targets = dict(SCALING_TIERS)
    if tier not in targets:
        raise SystemExit(
            f"unknown scaling tier {tier!r}; available: "
            + ", ".join(label for label, _ in SCALING_TIERS)
        )
    target = targets[tier]
    available = _arena.available_backends()
    if backends is None:
        # numpy drops out gracefully when the extra is absent: the race
        # still gates the arena backend, and CI legs without numpy pass.
        accelerated = tuple(
            b for b in ("arena", "numpy") if b in available
        )
    else:
        unknown = [b for b in backends if b not in available]
        if unknown:
            raise SystemExit(
                f"backend(s) not available: {', '.join(unknown)}; "
                f"available: {', '.join(available)}"
            )
        accelerated = tuple(b for b in backends if b != "legacy")
    best: dict[str, float] = {}
    mtups: dict[str, tuple] = {}
    prev = _arena.backend()
    try:
        for _ in range(repeat):
            for backend in accelerated + ("legacy",):
                _arena.set_backend(backend)
                module = scaled_program(target, seed)
                start = time.process_time()
                stats = form_module(
                    module, fast_path=True, record_events=False
                )
                elapsed = time.process_time() - start
                if backend not in best or elapsed < best[backend]:
                    best[backend] = elapsed
                mtups[backend] = stats.mtup
        for backend in accelerated:
            if mtups[backend] != mtups["legacy"]:
                raise RuntimeError(
                    "IR backend changed formation decisions: "
                    f"{backend} {mtups[backend]} != legacy "
                    f"{mtups['legacy']}"
                )
        ratios = {
            backend: best[backend] / best["legacy"]
            for backend in accelerated
        }
        result = {
            "tier": tier,
            "target_instrs": target,
            "seed": seed,
            "repeat": repeat,
            "legacy_cpu_s": round(best["legacy"], 4),
            "tolerance": tolerance,
            "mtup": list(mtups["legacy"]),
            "backends": {
                backend: {
                    "cpu_s": round(best[backend], 4),
                    "vs_legacy": round(ratios[backend], 4),
                }
                for backend in accelerated
            },
            "ok": all(r <= 1.0 + tolerance for r in ratios.values()),
        }
        # Flat keys the pre-numpy consumers (and the CI log grep) read.
        for backend in accelerated:
            result[f"{backend}_cpu_s"] = round(best[backend], 4)
            result[f"{backend}_vs_legacy"] = round(ratios[backend], 4)
        if not result["ok"]:
            slow = {
                b: r for b, r in ratios.items() if r > 1.0 + tolerance
            }
            raise RuntimeError(
                f"IR backend slower than legacy at {tier}: "
                + ", ".join(
                    f"{b} {best[b]:.4f}s vs {best['legacy']:.4f}s "
                    f"(ratio {r:.3f} > 1+{tolerance})"
                    for b, r in slow.items()
                )
            )
    finally:
        _arena.set_backend(prev)  # caller's selection, not the env's
    return result


def run_bench(
    subset: Optional[list[str]] = None,
    quick: bool = False,
    workers: Optional[int] = None,
    repeat: int = 3,
    parallel: bool = True,
    scale: bool = False,
    profile: bool = False,
    driver: str = "pool",
    sample_profile: bool = False,
    sample_hz: Optional[float] = None,
    sample_out: Optional[str] = None,
    mem_profile: bool = False,
    metrics=None,
) -> dict:
    """Run the formation benchmark; returns the BENCH_formation.json dict.

    ``scale=True`` additionally times the synthetic scaling tiers (see
    :func:`run_scale_bench`); with ``quick`` only the smallest tier runs.
    ``driver`` selects the parallel configuration's engine (``"pool"`` or
    ``"fleet"``), so the two can be raced on identical inputs.
    ``sample_profile=True`` runs the sampling profiler over an extra
    untimed pass (``sample_hz`` samples/s; ``sample_out`` is the path
    prefix for collapsed-stack and speedscope exports);
    ``mem_profile=True`` likewise runs the tracemalloc per-phase
    allocation profiler over its own untimed pass.  ``metrics``
    (a :class:`~repro.obs.metrics.MetricsRegistry`) is fed by the
    telemetry pass — ``--expose`` hands in the registry its endpoint
    serves.
    """
    if quick and subset is None:
        subset = list(QUICK_SUBSET)
        repeat = min(repeat, 2)
    prepared = prepare_workloads(subset)
    names = [name for name, _, _ in prepared]

    fast_s, fast_merges, mtup, cache = _time_sequential(prepared, True, repeat)
    # The legacy control means "all post-seed machinery off": the
    # invalidate-everything driver *and* the object-graph analysis
    # backend (see run_scale_bench's docstring for why the control must
    # not borrow the arena's view cache).
    prev = _ir_arena.backend()
    try:
        _ir_arena.set_backend("legacy")
        legacy_s, legacy_merges, legacy_mtup, _ = _time_sequential(
            prepared, False, repeat
        )
    finally:
        _ir_arena.set_backend(prev)
    if (fast_merges, mtup) != (legacy_merges, legacy_mtup):
        raise RuntimeError(
            "fast path changed formation results: "
            f"{(fast_merges, mtup)} != {(legacy_merges, legacy_mtup)}"
        )
    guarded_s, guarded_merges, guarded_mtup, _ = _time_sequential(
        prepared, True, repeat, failsafe=True
    )
    if (guarded_merges, guarded_mtup) != (fast_merges, mtup):
        raise RuntimeError(
            "trial guards changed formation results: "
            f"{(guarded_merges, guarded_mtup)} != {(fast_merges, mtup)}"
        )

    result = {
        "benchmark": "formation",
        "quick": quick,
        "workloads": names,
        "repeat": repeat,
        "sequential_fast_s": round(fast_s, 4),
        "sequential_legacy_s": round(legacy_s, 4),
        "speedup_fast_vs_legacy": round(legacy_s / fast_s, 3),
        "guarded_s": round(guarded_s, 4),
        "guard_overhead": round(guarded_s / fast_s, 3),
        "merges": fast_merges,
        "mtup": list(mtup),
        "merges_per_sec": round(fast_merges / fast_s, 1),
        "cache": cache,
    }
    # The pinned baselines only describe the full suite.
    if not quick and subset is None:
        result["baseline_pre_pr_s"] = BASELINE_PRE_PR_S
        result["baseline_commit"] = BASELINE_COMMIT
        result["speedup_vs_pre_pr"] = round(BASELINE_PRE_PR_S / fast_s, 3)
        result["baseline_pr1_s"] = BASELINE_PR1_S
        result["baseline_pr1_commit"] = BASELINE_PR1_COMMIT
        result["speedup_vs_pr1"] = round(BASELINE_PR1_S / fast_s, 3)
        result["trial_memo"] = {
            "hit_rate_pr1": BASELINE_PR1_TRIAL_HIT_RATE,
            "hit_rate": cache["trial_hit_rate"],
            "hit_rate_rejections": cache["trial_hit_rate_rejections"],
            "note": (
                "every re-offer of a rejected pair follows a commit to the "
                "hyperblock itself, so its version (hence the key) "
                "legitimately changes; the canonical live-out-mask key "
                "removes the remaining spurious misses, which the tiny "
                "SPEC CFGs rarely produce — see docs/PERFORMANCE.md"
            ),
        }

    if parallel:
        par_s, par_merges = _time_parallel(prepared, workers, repeat, driver)
        if par_merges != fast_merges:
            raise RuntimeError(
                f"{driver} formation changed merge count: "
                f"{par_merges} != {fast_merges}"
            )
        result["parallel_s"] = round(par_s, 4)
        result["parallel_workers"] = workers or 0  # 0 = executor default
        result["parallel_driver"] = driver
        result["speedup_parallel_vs_fast"] = round(fast_s / par_s, 3)

    if scale:
        tiers = SCALING_TIERS[:1] if quick else SCALING_TIERS
        result["scaling"] = run_scale_bench(tiers=tiers)

    if profile:
        result["profile_top"] = _profile_formation(prepared)

    if sample_profile:
        result["sample_profile"] = _sample_profile_formation(
            prepared, hz=sample_hz, out_prefix=sample_out
        )

    if mem_profile:
        result["mem_profile"] = _mem_profile_formation(
            prepared, metrics=metrics
        )

    result["telemetry"] = _collect_telemetry(prepared, registry=metrics)
    return result


def format_report(result: dict) -> str:
    lines = [
        "Formation benchmark"
        + (" (quick subset)" if result.get("quick") else ""),
        f"  workloads: {len(result['workloads'])}, "
        f"best of {result['repeat']}",
        f"  sequential fast:   {result['sequential_fast_s']:.4f}s "
        f"({result['merges_per_sec']:.0f} merges/s)",
        f"  sequential legacy: {result['sequential_legacy_s']:.4f}s "
        f"(fast is {result['speedup_fast_vs_legacy']:.2f}x)",
    ]
    if "guarded_s" in result:
        lines.append(
            f"  guarded (failsafe): {result['guarded_s']:.4f}s "
            f"({result['guard_overhead']:.2f}x of fast)"
        )
    if "speedup_vs_pre_pr" in result:
        lines.append(
            f"  pre-PR baseline:   {result['baseline_pre_pr_s']:.4f}s at "
            f"{result['baseline_commit']} "
            f"(fast is {result['speedup_vs_pre_pr']:.2f}x)"
        )
    if "speedup_vs_pr1" in result:
        lines.append(
            f"  PR-1 baseline:     {result['baseline_pr1_s']:.4f}s at "
            f"{result['baseline_pr1_commit']} "
            f"(fast is {result['speedup_vs_pr1']:.2f}x)"
        )
    if "parallel_s" in result:
        lines.append(
            f"  parallel:          {result['parallel_s']:.4f}s "
            f"({result['speedup_parallel_vs_fast']:.2f}x vs fast)"
        )
    cache = result["cache"]
    lines.append(
        f"  merges: {result['merges']} (m/t/u/p = "
        + "/".join(str(n) for n in result["mtup"])
        + f"), attempts: {cache['attempts']}"
    )
    lines.append(
        f"  trial memo: {cache['trial_hits']} hits / "
        f"{cache['trial_misses']} misses "
        f"(hit rate {cache['trial_hit_rate']:.1%}); "
        f"use/kill cache: {cache['use_kill_hits']} hits / "
        f"{cache['use_kill_misses']} misses"
    )
    lines.append(
        f"  liveness SCCs: {cache['liveness_sccs_solved']} re-solved, "
        f"{cache['liveness_sccs_skipped']} skipped; "
        f"loop forests: {cache['loop_renames']} renamed, "
        f"{cache['loop_rebuilds']} rebuilt"
    )
    for row in result.get("scaling", ()):
        lines.append(
            f"  scale {row['tier']:>4}: {row['instrs']} instrs / "
            f"{row['blocks']} blocks, fast {row['sequential_fast_s']:.3f}s, "
            f"legacy {row['sequential_legacy_s']:.3f}s "
            f"(fast is {row['speedup_fast_vs_legacy']:.2f}x), "
            f"{row['merges']} merges"
        )
    telemetry = result.get("telemetry")
    if telemetry:
        shares = ", ".join(
            f"{phase} {share:.0%}"
            for phase, share in sorted(
                telemetry["phase_shares"].items(), key=lambda kv: -kv[1]
            )
        )
        lines.append(
            f"  telemetry: {telemetry['events']} events "
            f"(1 traced pass, {telemetry['dropped']} dropped); "
            f"phase shares: {shares}"
        )
        arena = telemetry.get("arena")
        if arena:
            lines.append(
                f"  ir backend: {arena['backend']} "
                f"({arena['encodes']} encodes, {arena['view_hits']} view "
                f"hits, {arena['instrs_stored']} instrs stored, "
                f"{arena['column_bytes']} column bytes)"
            )
    sampled = result.get("sample_profile")
    if sampled:
        shares = ", ".join(
            f"{phase} {share:.0%}"
            for phase, share in sampled["phase_shares"].items()
        )
        lines.append(
            f"  sampled profile: {sampled['samples']} samples @ "
            f"{sampled['hz']:g} Hz over {sampled['duration_s']:.2f}s; "
            f"phases: {shares or 'n/a'}"
        )
        for row in sampled["top"][:5]:
            lines.append(
                f"    {row['samples']:6d} {row['share']:6.1%}  {row['frame']}"
            )
        for key in ("collapsed_path", "speedscope_path"):
            if key in sampled:
                lines.append(f"    wrote {sampled[key]}")
    mem = result.get("mem_profile")
    if mem:
        from repro.obs.memprof import format_bytes

        lines.append(
            f"  memory profile: net {format_bytes(mem['total_net_bytes'])}, "
            f"traced peak {format_bytes(mem['total_peak_bytes'])}, "
            f"process peak RSS {format_bytes(mem.get('peak_rss_bytes'))}"
        )
        lines.append(
            f"    {'phase':<12} {'entries':>8} {'net':>12} "
            f"{'self net':>12} {'peak Δ':>12}"
        )
        for phase, row in sorted(
            mem["phases"].items(),
            key=lambda item: -item[1]["self_net_bytes"],
        ):
            lines.append(
                f"    {phase:<12} {row['count']:>8} "
                f"{format_bytes(row['net_bytes']):>12} "
                f"{format_bytes(row['self_net_bytes']):>12} "
                f"{format_bytes(row['peak_delta_bytes']):>12}"
            )
        arena = mem.get("arena")
        if arena:
            lines.append(
                f"    arena: {format_bytes(arena.get('column_bytes'))} "
                f"column bytes ({arena.get('backend')} backend)"
            )
    rows = result.get("profile_top")
    if rows:
        lines.append(f"  profile (top {len(rows)} by cumulative time):")
        lines.append(
            f"    {'cumtime':>8} {'tottime':>8} {'ncalls':>9}  function"
        )
        for row in rows:
            lines.append(
                f"    {row['cumtime_s']:8.4f} {row['tottime_s']:8.4f} "
                f"{row['ncalls']:9d}  {row['function']} "
                f"({row['location']})"
            )
    return "\n".join(lines)


def _machine_metadata() -> dict:
    # Shared with run records so `compare` can tell "same machine" —
    # phase-time regressions only gate when the fingerprints match.
    from repro.obs.ledger import machine_metadata

    return machine_metadata()


def _history_summary(result: dict) -> dict:
    """The compact per-run record appended to the JSON ``history`` list."""
    summary = {
        "timestamp": result.get("timestamp"),
        "sequential_fast_s": result.get("sequential_fast_s"),
        "sequential_legacy_s": result.get("sequential_legacy_s"),
        "merges": result.get("merges"),
        "quick": result.get("quick"),
        "workload_count": len(result.get("workloads", ())),
    }
    if "parallel_s" in result:
        summary["parallel_s"] = result["parallel_s"]
    if "guarded_s" in result:
        summary["guarded_s"] = result["guarded_s"]
        fast_s = result.get("sequential_fast_s")
        if fast_s:
            # Recomputed per entry rather than copied from the top-level
            # result: carried-over entries predating this key stay
            # comparable, and the ratio always matches the entry's own
            # guarded_s/fast_s pair instead of a stale headline value.
            summary["guard_overhead"] = round(result["guarded_s"] / fast_s, 3)
    if "scaling" in result:
        summary["scaling"] = [
            {
                "tier": row["tier"],
                "sequential_fast_s": row["sequential_fast_s"],
                "speedup_fast_vs_legacy": row["speedup_fast_vs_legacy"],
            }
            for row in result["scaling"]
        ]
    telemetry = result.get("telemetry")
    if telemetry and telemetry.get("phase_time_s"):
        # Per-phase self time keyed by the backend the traced pass ran
        # under, so the history trajectory attributes estimate/liveness/
        # commit shifts to the backend that produced them instead of
        # averaging across backend changes between runs.
        backend = (telemetry.get("arena") or {}).get("backend", "unknown")
        summary["phase_self_s"] = {backend: telemetry["phase_time_s"]}
    return summary


def write_json(result: dict, path: str) -> None:
    """Write the bench JSON, preserving earlier runs.

    The previous file's ``history`` list is carried over and the new run
    is appended to it, so repeated benchmarking builds a trajectory
    instead of blindly overwriting the only data point.  Machine and
    interpreter metadata are recorded with every run — a regression that
    is really "same code, different machine" should be readable as such.

    History is an analysis input now (``compare --history`` plots it),
    so hygiene is enforced at write time: every appended entry is
    validated against the run-record history schema, carried-over
    entries missing a timestamp are backfilled from the previous file's
    stamp, and entries that stay malformed are dropped (counted in
    ``history_dropped``, never silently).
    """
    from repro.obs.ledger import sanitize_history, validate_history_entry

    result = dict(result)
    result["machine"] = _machine_metadata()
    result["timestamp"] = (
        datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds")
    )
    carried: list = []
    fallback = None
    try:
        with open(path) as handle:
            previous = json.load(handle)
    except (OSError, ValueError):
        previous = None
    if isinstance(previous, dict):
        fallback = previous.get("timestamp")
        old_history = previous.get("history")
        if isinstance(old_history, list):
            carried.extend(old_history)
        elif "sequential_fast_s" in previous:
            # Pre-history file: preserve its single data point.
            carried.append(_history_summary(previous))
    history, dropped = sanitize_history(
        carried, fallback_timestamp=fallback or result["timestamp"]
    )
    entry = _history_summary(result)
    validate_history_entry(entry)  # fail loudly before writing
    history.append(entry)
    result["history"] = history
    if dropped:
        result["history_dropped"] = dropped
    with open(path, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
