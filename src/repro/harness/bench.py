"""Formation performance benchmark (``BENCH_formation.json``).

Times end-to-end hyperblock formation over the SPEC workload suite in
three configurations:

- ``sequential_fast``   — ``form_module`` with the fast path (default),
- ``sequential_legacy`` — ``form_module(fast_path=False)``, the
  invalidate-everything control,
- ``parallel``          — :func:`repro.harness.parallel.form_many_parallel`.

Module construction and profile collection are *not* timed: the benchmark
isolates formation, which is what this repo's fast path optimizes.  Each
configuration is timed best-of-``repeat`` on fresh modules.  Merge counts
are asserted identical across configurations — a formation speedup that
changes the formed IR is a bug, not a win.

``BASELINE_PRE_PR_S`` pins the wall time of the same sequential loop
measured before the fast-path work (commit d482983), so the headline
``speedup_vs_pre_pr`` survives the old code no longer being checked out.
"""

from __future__ import annotations

import json
import time
from typing import Optional

from repro.core.convergent import form_module
from repro.harness.parallel import form_many_parallel
from repro.profiles import collect_profile
from repro.workloads.spec import SPEC_BENCHMARKS, SPEC_ORDER

#: Wall time of the identical sequential loop at commit d482983 (pre-PR),
#: best of 3 on the reference container.  Kept as data so the speedup the
#: fast path delivers stays measurable after the old code is gone.
BASELINE_PRE_PR_S = 0.4773
BASELINE_COMMIT = "d482983"

#: Small subset for CI smoke runs (--quick): a mix of loopy and branchy
#: workloads, not a representative sample — quick mode never compares
#: against the pre-PR baseline.
QUICK_SUBSET = ("ammp", "art", "bzip2", "equake", "mcf")


def prepare_workloads(subset: Optional[list[str]] = None):
    """Build modules and collect profiles (untimed setup)."""
    names = list(subset) if subset else list(SPEC_ORDER)
    unknown = [name for name in names if name not in SPEC_BENCHMARKS]
    if unknown:
        raise SystemExit(
            f"unknown workload(s): {', '.join(unknown)}; "
            f"available: {', '.join(SPEC_ORDER)}"
        )
    prepared = []
    for name in names:
        workload = SPEC_BENCHMARKS[name]
        module = workload.module()
        profile = collect_profile(
            module, args=workload.args, preload=workload.preload
        )
        prepared.append((name, workload, profile))
    return prepared


def _time_sequential(prepared, fast_path: bool, repeat: int):
    best = None
    merges = mtup = None
    for _ in range(repeat):
        modules = [(w.module(), p) for _, w, p in prepared]
        start = time.perf_counter()
        total_merges = 0
        total_mtup = (0, 0, 0, 0)
        for module, profile in modules:
            stats = form_module(
                module, profile=profile, fast_path=fast_path,
                record_events=False,
            )
            total_merges += stats.merges
            total_mtup = tuple(
                a + b for a, b in zip(total_mtup, stats.mtup)
            )
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
        merges, mtup = total_merges, total_mtup
    return best, merges, mtup


def _time_parallel(prepared, workers: Optional[int], repeat: int):
    best = None
    merges = None
    for _ in range(repeat):
        items = [(w.module(), p) for _, w, p in prepared]
        start = time.perf_counter()
        results = form_many_parallel(
            items, max_workers=workers, record_events=False
        )
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
        merges = sum(stats.merges for _, stats in results)
    return best, merges


def _collect_cache_stats(prepared) -> dict:
    """One instrumented fast-path pass; returns aggregated counters."""
    from repro.core.merge import FormationCacheStats

    total = FormationCacheStats()
    attempts = 0
    for _, workload, profile in prepared:
        module = workload.module()
        stats = form_module(
            module, profile=profile, fast_path=True, record_events=False
        )
        attempts += stats.attempts
        if stats.cache is not None:
            total.add(stats.cache)
    result = total.as_dict()
    result["trial_hit_rate"] = round(total.trial_hit_rate, 4)
    result["attempts"] = attempts
    return result


def run_bench(
    subset: Optional[list[str]] = None,
    quick: bool = False,
    workers: Optional[int] = None,
    repeat: int = 3,
    parallel: bool = True,
) -> dict:
    """Run the formation benchmark; returns the BENCH_formation.json dict."""
    if quick and subset is None:
        subset = list(QUICK_SUBSET)
        repeat = min(repeat, 2)
    prepared = prepare_workloads(subset)
    names = [name for name, _, _ in prepared]

    fast_s, fast_merges, mtup = _time_sequential(prepared, True, repeat)
    legacy_s, legacy_merges, legacy_mtup = _time_sequential(
        prepared, False, repeat
    )
    if (fast_merges, mtup) != (legacy_merges, legacy_mtup):
        raise RuntimeError(
            "fast path changed formation results: "
            f"{(fast_merges, mtup)} != {(legacy_merges, legacy_mtup)}"
        )

    result = {
        "benchmark": "formation",
        "quick": quick,
        "workloads": names,
        "repeat": repeat,
        "sequential_fast_s": round(fast_s, 4),
        "sequential_legacy_s": round(legacy_s, 4),
        "speedup_fast_vs_legacy": round(legacy_s / fast_s, 3),
        "merges": fast_merges,
        "mtup": list(mtup),
        "merges_per_sec": round(fast_merges / fast_s, 1),
        "cache": _collect_cache_stats(prepared),
    }
    # The pinned pre-PR baseline only describes the full suite.
    if not quick and subset is None:
        result["baseline_pre_pr_s"] = BASELINE_PRE_PR_S
        result["baseline_commit"] = BASELINE_COMMIT
        result["speedup_vs_pre_pr"] = round(BASELINE_PRE_PR_S / fast_s, 3)

    if parallel:
        par_s, par_merges = _time_parallel(prepared, workers, repeat)
        if par_merges != fast_merges:
            raise RuntimeError(
                "parallel formation changed merge count: "
                f"{par_merges} != {fast_merges}"
            )
        result["parallel_s"] = round(par_s, 4)
        result["parallel_workers"] = workers or 0  # 0 = executor default
        result["speedup_parallel_vs_fast"] = round(fast_s / par_s, 3)
    return result


def format_report(result: dict) -> str:
    lines = [
        "Formation benchmark"
        + (" (quick subset)" if result.get("quick") else ""),
        f"  workloads: {len(result['workloads'])}, "
        f"best of {result['repeat']}",
        f"  sequential fast:   {result['sequential_fast_s']:.4f}s "
        f"({result['merges_per_sec']:.0f} merges/s)",
        f"  sequential legacy: {result['sequential_legacy_s']:.4f}s "
        f"(fast is {result['speedup_fast_vs_legacy']:.2f}x)",
    ]
    if "speedup_vs_pre_pr" in result:
        lines.append(
            f"  pre-PR baseline:   {result['baseline_pre_pr_s']:.4f}s at "
            f"{result['baseline_commit']} "
            f"(fast is {result['speedup_vs_pre_pr']:.2f}x)"
        )
    if "parallel_s" in result:
        lines.append(
            f"  parallel:          {result['parallel_s']:.4f}s "
            f"({result['speedup_parallel_vs_fast']:.2f}x vs fast)"
        )
    cache = result["cache"]
    lines.append(
        f"  merges: {result['merges']} (m/t/u/p = "
        + "/".join(str(n) for n in result["mtup"])
        + f"), attempts: {cache['attempts']}"
    )
    lines.append(
        f"  trial memo: {cache['trial_hits']} hits / "
        f"{cache['trial_misses']} misses "
        f"(hit rate {cache['trial_hit_rate']:.1%}); "
        f"use/kill cache: {cache['use_kill_hits']} hits / "
        f"{cache['use_kill_misses']} misses"
    )
    lines.append(
        f"  liveness SCCs: {cache['liveness_sccs_solved']} re-solved, "
        f"{cache['liveness_sccs_skipped']} skipped; "
        f"loop forests: {cache['loop_renames']} renamed, "
        f"{cache['loop_rebuilds']} rebuilt"
    )
    return "\n".join(lines)


def write_json(result: dict, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
