"""Drivers that regenerate every table and figure of the paper.

- :func:`table1` — cycle improvement of phase orderings (microbenchmarks)
- :func:`table2` — VLIW/DF/BF heuristics (microbenchmarks)
- :func:`table3` — block-count improvement on the SPEC surrogates
- :func:`figure7` — cycle-count vs block-count reduction regression
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

try:  # optional extra (`pip install .[fast]`); figure7 has a pure fit
    import numpy as np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    np = None

from repro.core.policies import BreadthFirstPolicy
from repro.harness.experiment import (
    RunResult,
    WorkloadExperiment,
    heuristic_config,
    ordering_config,
)
from repro.workloads.microbench import MICROBENCH_ORDER, MICROBENCHMARKS
from repro.workloads.spec import SPEC_ORDER, SPEC_BENCHMARKS

TABLE1_ORDERINGS = ("UPIO", "IUPO", "(IUP)O", "(IUPO)")
TABLE2_HEURISTICS = ("VLIW", "Convergent VLIW", "DF", "BF")


@dataclass
class TableResult:
    """Rows of one regenerated table."""

    title: str
    configs: tuple[str, ...]
    #: workload -> {config -> RunResult}
    rows: dict[str, dict[str, RunResult]] = field(default_factory=dict)
    metric: str = "cycles"  # or "blocks"

    def improvement(self, workload: str, config: str) -> float:
        row = self.rows[workload]
        base = row["BB"]
        if self.metric == "cycles":
            return row[config].improvement_over(base)
        return row[config].block_improvement_over(base)

    def average(self, config: str) -> float:
        values = [self.improvement(w, config) for w in self.rows]
        return sum(values) / len(values) if values else 0.0

    # -- presentation -----------------------------------------------------

    def format(self) -> str:
        unit = "cycle" if self.metric == "cycles" else "block-count"
        lines = [self.title, ""]
        base_hdr = "BB " + ("cycles" if self.metric == "cycles" else "blocks")
        header = f"{'benchmark':16s} {base_hdr:>12s}"
        for config in self.configs:
            header += f" | {config:>16s} {'m/t/u/p':>12s}"
        lines.append(header)
        lines.append("-" * len(header))
        for workload in self.rows:
            row = self.rows[workload]
            base = row["BB"]
            base_value = (
                base.cycles if self.metric == "cycles" else base.dynamic_blocks
            )
            line = f"{workload:16s} {base_value:12d}"
            for config in self.configs:
                result = row[config]
                mtup = "/".join(str(x) for x in result.mtup)
                line += (
                    f" | {self.improvement(workload, config):15.1f}%"
                    f" {mtup:>12s}"
                )
            lines.append(line)
        lines.append("-" * len(header))
        line = f"{'Average':16s} {'':12s}"
        for config in self.configs:
            line += f" | {self.average(config):15.1f}% {'':>12s}"
        lines.append(line)
        lines.append("")
        lines.append(f"(percent {unit} improvement over basic blocks; "
                     f"m/t/u/p = merges/tail-dups/unrolls/peels)")
        return "\n".join(lines)


def _run_table(
    title: str,
    workloads,
    configs,
    config_factory,
    timing: bool,
    metric: str,
    subset: Optional[list[str]] = None,
) -> TableResult:
    table = TableResult(title=title, configs=tuple(configs), metric=metric)
    names = subset if subset is not None else list(workloads)
    if isinstance(workloads, dict):
        unknown = [name for name in names if name not in workloads]
        if unknown:
            raise SystemExit(
                f"unknown workload(s): {', '.join(unknown)}; "
                f"available: {', '.join(workloads)}"
            )
    for name in names:
        experiment = WorkloadExperiment(
            workload=workloads[name] if isinstance(workloads, dict) else name,
            timing=timing,
        )
        experiment.run({c: config_factory(c) for c in configs})
        table.rows[name] = experiment.results
    return table


def table1(subset: Optional[list[str]] = None) -> TableResult:
    """Table 1: phase orderings, cycle counts on the microbenchmarks."""
    names = subset or MICROBENCH_ORDER
    return _run_table(
        "Table 1: % cycle improvement over basic blocks (phase orderings)",
        MICROBENCHMARKS,
        TABLE1_ORDERINGS,
        lambda c: ordering_config(c, BreadthFirstPolicy),
        timing=True,
        metric="cycles",
        subset=names,
    )


def table2(subset: Optional[list[str]] = None) -> TableResult:
    """Table 2: VLIW vs EDGE heuristics, cycle counts."""
    names = subset or MICROBENCH_ORDER
    return _run_table(
        "Table 2: % cycle improvement over basic blocks (heuristics)",
        MICROBENCHMARKS,
        TABLE2_HEURISTICS,
        heuristic_config,
        timing=True,
        metric="cycles",
        subset=names,
    )


def table3(subset: Optional[list[str]] = None) -> TableResult:
    """Table 3: block counts on the SPEC surrogates (functional sim)."""
    names = subset or SPEC_ORDER
    return _run_table(
        "Table 3: % block-count improvement over basic blocks (SPEC "
        "surrogates, functional simulation)",
        SPEC_BENCHMARKS,
        TABLE1_ORDERINGS,
        lambda c: ordering_config(c, BreadthFirstPolicy),
        timing=False,
        metric="blocks",
        subset=names,
    )


@dataclass
class RegressionResult:
    """Figure 7: cycle reduction vs block reduction."""

    points: list[tuple[str, str, int, int]]  # workload, config, dblocks, dcycles
    slope: float
    intercept: float
    r_squared: float

    def format(self) -> str:
        lines = [
            "Figure 7: cycle-count reduction vs block-count reduction",
            "",
            f"{'benchmark':16s} {'config':>8s} {'block redux':>12s} {'cycle redux':>12s}",
        ]
        for workload, config, db, dc in self.points:
            lines.append(f"{workload:16s} {config:>8s} {db:12d} {dc:12d}")
        lines.append("")
        lines.append(
            f"linear fit: dcycles = {self.slope:.2f} * dblocks "
            f"+ {self.intercept:.1f}   (r^2 = {self.r_squared:.3f})"
        )
        return "\n".join(lines)


def figure7(table1_result: Optional[TableResult] = None) -> RegressionResult:
    """Regenerate Figure 7 from Table 1's runs."""
    result = table1_result if table1_result is not None else table1()
    points = []
    xs, ys = [], []
    for workload, row in result.rows.items():
        base = row["BB"]
        for config in result.configs:
            r = row[config]
            dblocks = base.dynamic_blocks - r.dynamic_blocks
            dcycles = base.cycles - r.cycles
            points.append((workload, config, dblocks, dcycles))
            xs.append(dblocks)
            ys.append(dcycles)
    if np is not None:
        x = np.asarray(xs, dtype=float)
        y = np.asarray(ys, dtype=float)
        slope, intercept = np.polyfit(x, y, 1)
        predicted = slope * x + intercept
        ss_res = float(np.sum((y - predicted) ** 2))
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        r_squared = 1.0 - ss_res / ss_tot if ss_tot else 1.0
        return RegressionResult(
            points, float(slope), float(intercept), r_squared
        )
    # Ordinary least squares, degree 1 — the closed form numpy's polyfit
    # solves, so numpy-free installs regenerate the same figure.
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx if sxx else 0.0
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 - ss_res / ss_tot if ss_tot else 1.0
    return RegressionResult(points, float(slope), float(intercept), r_squared)
