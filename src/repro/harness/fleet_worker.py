"""The fleet worker: a long-lived formation daemon process.

One worker is one spawned process running :func:`worker_main` over a
duplex :class:`multiprocessing.connection.Connection` back to the
supervisor (:mod:`repro.harness.fleet`).  Unlike a pool worker, it is
*persistent*: interpreter start-up, module imports and arena warm-up are
paid once per worker, then amortized over every job the supervisor leases
to it — the prun-style scheduler model (long-lived contexts, polled job
queue) rather than pool-per-run.

Protocol (pickled tuples; first element is the message tag):

========== ============================ =================================
direction  message                       meaning
========== ============================ =================================
sup → wkr  ``("job", job_id, payload)``  lease one job to this worker
sup → wkr  ``("shutdown",)``             drain and exit cleanly
wkr → sup  ``("ready", wid, pid)``       worker finished booting
wkr → sup  ``("heartbeat", wid, job,     liveness beacon (``job`` =
           extras)``                     currently leased job id or
                                         None); ``extras`` piggybacks
                                         live telemetry — see below
wkr → sup  ``("done", job_id, result)``  ``result = (formed, report,
                                         trace fragment)``
wkr → sup  ``("failed", job_id, info)``  the job raised; ``info`` is a
                                         plain dict (type/message/
                                         traceback/fault kind)
========== ============================ =================================

The heartbeat's ``extras`` dict (new in the live-observability layer;
old supervisors that index only ``message[0..2]`` still work) carries:

- ``snapshot`` — the next delta-encoded, sequence-numbered metrics
  snapshot from this worker's :class:`~repro.obs.live.MetricsPublisher`
  (``None`` when nothing changed since the last beat — an idle worker
  ships no metric payload at all);
- ``rss`` — peak resident set size in bytes;
- ``jobs_done`` — jobs completed by this worker since boot.

Each worker owns one process-local :class:`~repro.obs.metrics.
MetricsRegistry` for its whole life: per-job tracers feed phase
histograms into it, job completions bump the ``formation_*`` counters,
and the publisher streams the cumulative state back on every beat.  The
supervisor merges the stream per-worker-label into its own registry
(:class:`~repro.obs.live.SnapshotMerger`), which is what ``--expose``
serves and ``python -m repro.harness top`` renders.

Job payloads are the pool drivers' payload shape plus a task kind:
``(kind, obj, profile, form_kwargs, plane, trace_on)`` with ``kind`` in
``{"module", "function"}``.  The active :class:`FaultPlane` ships inside
each payload (a spawned worker inherits nothing), exactly like the pool.

Heartbeats come from a daemon thread so a *busy* worker (deep inside a
long formation) still beats.  The injected ``stall`` fault deliberately
**pauses** the heartbeat thread before sleeping: it models a hard-wedged
process (C-level block, deadlock), which is precisely the failure the
supervisor's missed-heartbeat detection exists for.  ``kill`` is
``os._exit`` mid-job — the supervisor sees the pipe drop and respawns
only this worker.

Worker death is always safe from the worker's own perspective: a job is
only reported ``done`` after formation finished, so the supervisor can
requeue any job whose worker vanished without ever double-counting a
result.
"""

from __future__ import annotations

import os
import threading
import time
import traceback as _traceback

from repro.robustness import faultinject
from repro.robustness.faultinject import InjectedFault

#: Exit code of a fault-injected worker kill (visible in the supervisor's
#: ``worker_death`` trace events as ``exitcode``).
KILL_EXIT_CODE = 13


class _Channel:
    """Thread-safe sender over the worker's end of the supervisor pipe.

    The heartbeat thread and the job loop both send; ``Connection.send``
    is not documented thread-safe, so every send takes the lock.  A
    broken pipe (the supervisor died or dropped us) flips ``closed`` and
    sends become no-ops — the job loop notices on its next ``recv``.
    """

    def __init__(self, conn):
        self.conn = conn
        self.lock = threading.Lock()
        self.closed = False

    def send(self, message) -> bool:
        with self.lock:
            if self.closed:
                return False
            try:
                self.conn.send(message)
                return True
            except (BrokenPipeError, OSError):
                self.closed = True
                return False


class _Heartbeat:
    """Daemon thread beating ``("heartbeat", wid, current_job, extras)``.

    ``extras`` is built fresh per beat by the optional ``extras_fn``
    callback (the live-telemetry piggyback); a callback failure never
    silences the beacon — liveness detection outranks telemetry.
    """

    def __init__(
        self,
        channel: _Channel,
        worker_id: int,
        interval: float,
        extras_fn=None,
    ):
        self.channel = channel
        self.worker_id = worker_id
        self.interval = interval
        self.extras_fn = extras_fn
        self.current_job = None
        self._paused = threading.Event()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()

    def pause(self) -> None:
        """Silence the beacon (the ``stall`` fault's wedge simulation)."""
        self._paused.set()

    def resume(self) -> None:
        self._paused.clear()

    def _run(self) -> None:
        while not self._stop.is_set():
            if not self._paused.is_set():
                extras = None
                if self.extras_fn is not None:
                    try:
                        extras = self.extras_fn()
                    except Exception:
                        extras = None
                self.channel.send(
                    ("heartbeat", self.worker_id, self.current_job, extras)
                )
            # wait() instead of sleep(): stop() interrupts immediately.
            self._stop.wait(self.interval)


def _apply_fleet_fault(plane, task_name: str, heartbeat: _Heartbeat) -> None:
    """Act out a worker-level fault inside a fleet worker.

    Same kinds as the pool workers (``raise``/``stall``/``kill``), but
    ``stall`` additionally pauses the heartbeat beacon: a wedged process
    does not beat, and missed heartbeats are what the supervisor's lease
    expiry detects.
    """
    kind = plane.worker_fault(task_name)
    if kind is None:
        return
    plane.record("worker", kind, task_name)
    if kind == "stall":
        heartbeat.pause()
        try:
            time.sleep(plane.stall_seconds)
        finally:
            heartbeat.resume()
        return
    if kind == "kill":
        os._exit(KILL_EXIT_CODE)  # die without cleanup: the pipe just drops
    exc = InjectedFault(f"injected worker fault in task {task_name!r}")
    exc.fault_kind = kind
    raise exc


def _failure_info(exc: BaseException) -> dict:
    """A picklable projection of a job exception (strings only, like
    :class:`~repro.robustness.guard.TrialFailure` demands)."""
    return {
        "error_type": type(exc).__name__,
        "error": str(exc) or type(exc).__name__,
        "traceback": "".join(_traceback.format_exception(exc)).strip()[-2000:],
        "fault_kind": getattr(exc, "fault_kind", None),
    }


def _publish_job_metrics(metrics, report, fragment) -> None:
    """Fold one finished job's formation counters into the worker's
    long-lived registry (the live stream's ``formation_*`` series).

    Reads only the report/fragment the job already produced — no extra
    work happens inside formation itself, so the decision stream is
    untouched.
    """
    if metrics is None:
        return
    stats = getattr(report, "stats", None)
    if stats is not None:
        metrics.inc("formation_merges_total", stats.merges)
        metrics.inc("formation_attempts_total", stats.attempts)
        metrics.inc("formation_rejected_total", stats.rejected_illegal)
        cache = stats.cache
        if cache is not None:
            metrics.inc("formation_trial_cache_total", cache.trial_hits,
                        outcome="hit")
            metrics.inc("formation_trial_cache_total", cache.trial_misses,
                        outcome="miss")
            metrics.inc("formation_use_kill_cache_total",
                        cache.use_kill_hits, outcome="hit")
            metrics.inc("formation_use_kill_cache_total",
                        cache.use_kill_misses, outcome="miss")
    for event in fragment or ():
        if event.name == "reject":
            metrics.inc(
                "formation_rejections_total",
                reason=event.attrs.get("reason", "unknown"),
            )


def _run_job(job_id, payload, heartbeat: _Heartbeat, metrics=None):
    """Execute one leased job; returns the message to send back.

    Mirrors the pool workers' task bodies (install plane + tracer, form,
    collect the trace fragment) but never lets an exception escape: a
    raising job becomes a ``failed`` message, and the worker lives on to
    take the next lease.  ``metrics`` is the worker's persistent
    registry: the per-job tracer feeds phase histograms into it, and the
    finished job's counters are folded in for the live stream.
    """
    # Imported lazily so a worker that only ever relays faults does not
    # pay for the formation stack — and to keep boot (hence respawn
    # latency) dominated by interpreter start-up alone.
    from repro.core.convergent import form_function, form_module
    from repro.harness.parallel import _collect_fragment, _worker_tracer
    from repro.obs import trace as obs_trace

    kind, obj, profile, form_kwargs, plane, trace_on = payload
    tracer = _worker_tracer(trace_on, metrics=metrics)
    try:
        try:
            if plane is not None:
                faultinject.install(plane)
                _apply_fleet_fault(plane, obj.name, heartbeat)
            if kind == "module":
                report = form_module(obj, profile=profile, **form_kwargs)
            elif kind == "function":
                report = form_function(obj, profile=profile, **form_kwargs)
            else:
                raise ValueError(f"unknown fleet job kind {kind!r}")
        finally:
            if plane is not None:
                faultinject.clear()
            if tracer is not None:
                obs_trace.clear()
    except Exception as exc:
        fragment = _collect_fragment(tracer)
        info = _failure_info(exc)
        info["fragment"] = fragment
        return ("failed", job_id, info)
    fragment = _collect_fragment(tracer)
    _publish_job_metrics(metrics, report, fragment)
    return ("done", job_id, (obj, report, fragment))


def worker_main(conn, worker_id: int, heartbeat_interval: float) -> None:
    """Entry point of a fleet worker process: beat, lease, form, repeat."""
    from repro.obs.live import MetricsPublisher, rss_bytes
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    publisher = MetricsPublisher(registry)
    jobs_done = [0]

    def _beat_extras() -> dict:
        # Runs on the heartbeat thread; snapshot() tolerates the job
        # thread mutating the registry concurrently (see obs.live).
        return {
            "snapshot": publisher.snapshot(),
            "rss": rss_bytes(),
            "jobs_done": jobs_done[0],
        }

    channel = _Channel(conn)
    heartbeat = _Heartbeat(
        channel, worker_id, heartbeat_interval, extras_fn=_beat_extras
    )
    heartbeat.start()
    channel.send(("ready", worker_id, os.getpid()))
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break  # supervisor went away; nothing left to serve
            if not message or message[0] == "shutdown":
                break
            if message[0] != "job":
                continue  # unknown tags are ignored, not fatal
            _, job_id, payload = message
            heartbeat.current_job = job_id
            reply = _run_job(job_id, payload, heartbeat, metrics=registry)
            heartbeat.current_job = None
            jobs_done[0] += 1
            if not channel.send(reply):
                break  # result undeliverable: supervisor is gone
    finally:
        heartbeat.stop()
        try:
            conn.close()
        except OSError:
            pass
