"""Opt-in parallel formation drivers.

Hyperblock formation is embarrassingly parallel at function (and module)
granularity: formation never looks across function boundaries, and the
profile is read-only.  These drivers fan work out over a
``ProcessPoolExecutor`` — processes, not threads, because formation is
pure CPython bytecode and holds the GIL.

Determinism: workers are *scheduled* largest-first for load balance, but
results are accumulated in the caller's original order, so the combined
:class:`MergeStats` (and the formed IR itself) is bit-identical to a
sequential run.  Block version stamps are process-local and re-issued on
unpickle (see ``repro.ir.block``), so shipping functions across the pool
can never alias an analysis cache in the parent.

Everything here is opt-in: the sequential drivers in
``repro.core.convergent`` remain the default, and both drivers below fall
back to them for trivial inputs or ``max_workers=1``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Optional, Sequence

from repro.core.convergent import form_function, form_module
from repro.core.merge import MergeStats
from repro.ir.function import Function, Module
from repro.profiles.data import ProfileData

#: Below this many basic blocks (summed over the input), auto mode
#: (``max_workers=None``) stays sequential: spawning a process pool costs
#: on the order of 100 ms while formation chews through a few thousand
#: blocks per second, so small inputs lose more to pickling and worker
#: start-up than they gain from parallelism.  An explicit ``max_workers``
#: >= 2 always uses the pool.
AUTO_SERIAL_MAX_BLOCKS = 256


def _total_blocks(modules) -> int:
    return sum(
        len(func.blocks) for module in modules for func in module
    )


def _auto_serial(modules, max_workers: Optional[int]) -> bool:
    """True when auto mode should fall back to the sequential driver."""
    if max_workers is not None:
        return max_workers == 1
    return _total_blocks(modules) < AUTO_SERIAL_MAX_BLOCKS


def _form_one(payload):
    """Worker: form a single pickled function; module-level for pickling."""
    func, profile, kwargs = payload
    stats = form_function(func, profile=profile, **kwargs)
    return func, stats


def _form_module_task(payload):
    """Worker: form a whole pickled module; module-level for pickling."""
    module, profile, kwargs = payload
    stats = form_module(module, profile=profile, **kwargs)
    return module, stats


def form_module_parallel(
    module: Module,
    profile: Optional[ProfileData] = None,
    max_workers: Optional[int] = None,
    **form_kwargs,
) -> MergeStats:
    """Form every function of ``module`` across a process pool.

    ``form_kwargs`` are forwarded to :func:`form_function` (``constraints``,
    ``policy``, ``fast_path``, ``record_events``, ...) and must be picklable.
    The module's functions are replaced in place by their formed versions;
    the returned stats accumulate per-function stats in module order, so
    the result is identical to :func:`form_module` on the same input.

    Falls back to the sequential driver when the module has at most one
    function, when ``max_workers == 1``, or — in auto mode
    (``max_workers=None``) — when the module is smaller than
    ``AUTO_SERIAL_MAX_BLOCKS`` basic blocks, where the pool's start-up
    and pickling overhead dwarfs formation time.
    """
    record_events = form_kwargs.get("record_events", True)
    names = list(module.functions)
    if len(names) <= 1 or _auto_serial((module,), max_workers):
        return form_module(module, profile=profile, **form_kwargs)

    # Schedule biggest functions first so the pool drains evenly.
    order = sorted(names, key=lambda n: (-module.functions[n].size(), n))
    futures = {}
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        for name in order:
            payload = (module.functions[name], profile, form_kwargs)
            futures[name] = pool.submit(_form_one, payload)
        results = {name: futures[name].result() for name in names}

    total = MergeStats(record_events=record_events)
    for name in names:  # accumulate in module order, not completion order
        formed, stats = results[name]
        module.functions[name] = formed
        total.add(stats)
    return total


def form_many_parallel(
    items: Sequence[tuple[Module, Optional[ProfileData]]],
    max_workers: Optional[int] = None,
    **form_kwargs,
) -> list[tuple[Module, MergeStats]]:
    """Form many independent (module, profile) pairs across a process pool.

    This is the shape benchmark suites have — many small modules — where
    per-function fan-out would starve the pool.  Returns ``(formed module,
    stats)`` pairs in input order.  Note the *returned* modules are the
    formed ones (round-tripped through the pool); the caller's input
    modules are left untouched.

    Auto mode (``max_workers=None``) stays sequential below
    ``AUTO_SERIAL_MAX_BLOCKS`` total basic blocks, like
    :func:`form_module_parallel`.
    """
    if len(items) <= 1 or _auto_serial(
        (module for module, _ in items), max_workers
    ):
        out = []
        for module, profile in items:
            stats = form_module(module, profile=profile, **form_kwargs)
            out.append((module, stats))
        return out

    indexed = sorted(
        range(len(items)), key=lambda i: (-items[i][0].size(), items[i][0].name)
    )
    futures = {}
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        for i in indexed:
            module, profile = items[i]
            futures[i] = pool.submit(
                _form_module_task, (module, profile, form_kwargs)
            )
        return [futures[i].result() for i in range(len(items))]
