"""Opt-in, crash-resilient parallel formation drivers.

Hyperblock formation is embarrassingly parallel at function (and module)
granularity: formation never looks across function boundaries, and the
profile is read-only.  These drivers fan work out over a
``ProcessPoolExecutor`` — processes, not threads, because formation is
pure CPython bytecode and holds the GIL.

Determinism: workers are *scheduled* largest-first for load balance, but
results are accumulated in the caller's original order, so the combined
:class:`FormationReport` (and the formed IR itself) is bit-identical to a
sequential run.  Block version stamps are process-local and re-issued on
unpickle (see ``repro.ir.block``), so shipping functions across the pool
can never alias an analysis cache in the parent.

Crash resilience mirrors the in-process trial guards one level up — a
worker failure must cost one task, never the run:

- every task's exception is captured and lands the task ``failed_safe``
  (the caller keeps its pre-formation IR) with a ``stage="worker"``
  :class:`TrialFailure` in the report;
- raising tasks are retried a bounded number of times with exponential
  backoff before being written off (transient failures recover, a
  deterministic crash converges to ``failed_safe``);
- each task gets a wall-clock timeout (``task_timeout``); a stalled
  worker forfeits its task instead of hanging the driver;
- a broken pool (:class:`BrokenProcessPool` — a worker died hard) drops
  the driver into an in-process serial fallback for every task that has
  not produced a result yet.

An active :class:`~repro.robustness.faultinject.FaultPlane` is shipped to
workers inside each task payload (pool workers do not inherit the
parent's installed plane under the ``spawn`` start method), so fault
drills behave identically under serial and parallel drivers.

Everything here is opt-in: the sequential drivers in
``repro.core.convergent`` remain the default, and both drivers below fall
back to them for trivial inputs or ``max_workers=1``.
"""

from __future__ import annotations

import os
import threading
import time
import traceback as _traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Optional, Sequence

from repro.core.convergent import form_function, form_module
from repro.core.merge import MergeStats
from repro.ir.function import Function, Module
from repro.obs import trace as obs_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.sink import MemorySink
from repro.profiles.data import ProfileData
from repro.robustness import faultinject
from repro.robustness.faultinject import (
    FaultPlane,
    InjectedFault,
    active_plane,
    stable_roll,
)
from repro.robustness.guard import (
    FormationReport,
    FunctionReport,
    FunctionStatus,
    TrialFailure,
)

#: Below this many basic blocks (summed over the input), auto mode
#: (``max_workers=None``) stays sequential: spawning a process pool costs
#: on the order of 100 ms while formation chews through a few thousand
#: blocks per second, so small inputs lose more to pickling and worker
#: start-up than they gain from parallelism.  An explicit ``max_workers``
#: >= 2 always uses the pool.
AUTO_SERIAL_MAX_BLOCKS = 256

#: Default retry budget for a raising worker task (total attempts =
#: 1 + DEFAULT_RETRIES) and the base of the exponential backoff between
#: attempts.
DEFAULT_RETRIES = 1
DEFAULT_BACKOFF = 0.05

#: Ceiling on any single retry delay.  ``backoff * 2**attempt`` must not
#: grow without bound: a generous retry budget would otherwise turn into
#: minutes of sleeping on a deterministic crash.
BACKOFF_CAP = 2.0

#: Driver-level counters promoted from trace-only events so ``stats``
#: output and ledger-record telemetry see recovery activity, not just
#: trace readers.
RETRIES_METRIC = "formation_task_retries_total"
TIMEOUTS_METRIC = "formation_task_timeouts_total"
SERIAL_FALLBACKS_METRIC = "formation_serial_fallbacks_total"


def retry_delay(
    backoff: float,
    attempt: int,
    task_name: str,
    cap: float = BACKOFF_CAP,
) -> float:
    """Capped exponential backoff with deterministic per-task jitter.

    The jitter factor lives in [0.5, 1.5) and is a pure function of
    ``(task_name, attempt)``, so simultaneous retries of *different*
    tasks de-synchronize (they stop hammering a shared resource in lock
    step) while any given run remains exactly reproducible.
    """
    delay = min(cap, backoff * (2 ** attempt))
    jitter = 0.5 + stable_roll(task_name, "retry", attempt)
    return min(cap, delay * jitter)


def _active_metrics() -> Optional[MetricsRegistry]:
    """The installed tracer's metrics registry, if any.

    Driver counters follow the same gating as driver trace events: no
    tracer (or a tracer without metrics) means no bookkeeping cost.
    """
    tracer = obs_trace.active_tracer()
    return tracer.metrics if tracer is not None else None


def _total_blocks(modules) -> int:
    return sum(
        len(func.blocks) for module in modules for func in module
    )


def _auto_serial(modules, max_workers: Optional[int]) -> bool:
    """True when auto mode should fall back to the sequential driver."""
    if max_workers is not None:
        return max_workers == 1
    return _total_blocks(modules) < AUTO_SERIAL_MAX_BLOCKS


# ---------------------------------------------------------------------------
# Worker-side task bodies (module-level for pickling)
# ---------------------------------------------------------------------------


def _apply_worker_fault(plane: FaultPlane, task_name: str) -> None:
    """Act out a worker-level fault inside a pool worker."""
    kind = plane.worker_fault(task_name)
    if kind is None:
        return
    plane.record("worker", kind, task_name)
    if kind == "stall":
        time.sleep(plane.stall_seconds)
        return
    if kind == "kill":
        os._exit(13)  # die without cleanup: breaks the whole pool
    exc = InjectedFault(f"injected worker fault in task {task_name!r}")
    exc.fault_kind = kind
    raise exc


def _worker_tracer(trace_on: bool, metrics=None):
    """Install a fragment tracer in a pool worker when the parent traces.

    Workers do not inherit the parent's installed tracer (the ``spawn``
    start method starts from a fresh interpreter), so each traced task
    builds its own in-memory tracer and ships the collected events back
    inside the task result for the parent to :meth:`Tracer.absorb`.

    ``metrics`` (fleet workers pass their process-local registry) makes
    phase spans feed ``formation_phase_seconds`` worker-side, where the
    live snapshot stream picks them up.
    """
    if not trace_on:
        return None
    tracer = obs_trace.Tracer(sinks=(MemorySink(),), metrics=metrics)
    obs_trace.install(tracer)
    return tracer


def _collect_fragment(tracer):
    """Worker-side fragment pickup, stamped with the worker's real pid
    and thread id.

    The stamps let the Chrome exporter lane fleet/pool work as one track
    per worker process instead of one interleaved track.  They are
    fingerprint-safe by construction: :func:`repro.obs.ledger.
    decision_entry` projects a fixed attribute set that never includes
    ``pid``/``tid``.
    """
    if tracer is None:
        return None
    events = tracer.collected_events()
    pid = os.getpid()
    tid = threading.get_ident()
    for event in events:
        event.attrs.setdefault("pid", pid)
        event.attrs.setdefault("tid", tid)
    return events


def _form_one(payload):
    """Worker: form a single pickled function; module-level for pickling."""
    func, profile, kwargs, plane, trace_on = payload
    tracer = _worker_tracer(trace_on)
    try:
        if plane is not None:
            faultinject.install(plane)
            _apply_worker_fault(plane, func.name)
        report = form_function(func, profile=profile, **kwargs)
    finally:
        if plane is not None:
            faultinject.clear()
        if tracer is not None:
            obs_trace.clear()
    return func, report, _collect_fragment(tracer)


def _form_module_task(payload):
    """Worker: form a whole pickled module; module-level for pickling."""
    module, profile, kwargs, plane, trace_on = payload
    tracer = _worker_tracer(trace_on)
    try:
        if plane is not None:
            faultinject.install(plane)
            _apply_worker_fault(plane, module.name)
        report = form_module(module, profile=profile, **kwargs)
    finally:
        if plane is not None:
            faultinject.clear()
        if tracer is not None:
            obs_trace.clear()
    return module, report, _collect_fragment(tracer)


# ---------------------------------------------------------------------------
# Parent-side task supervision
# ---------------------------------------------------------------------------


def _worker_failure(
    task_name: str, stage_error: BaseException, attempts: int = 1
) -> TrialFailure:
    tb = "".join(
        _traceback.format_exception(stage_error)
    ).strip()
    return TrialFailure(
        function=task_name,
        stage="worker",
        error_type=type(stage_error).__name__,
        error=str(stage_error) or type(stage_error).__name__,
        traceback=tb[-2000:],
        fault_kind=getattr(stage_error, "fault_kind", None),
        attempts=attempts,
    )


def _failed_safe_report(
    name: str, failure: TrialFailure, record_events: bool
) -> FunctionReport:
    return FunctionReport(
        name,
        FunctionStatus.FAILED_SAFE,
        MergeStats(record_events=record_events),
        [failure],
    )


class _TaskSupervisor:
    """Runs payloads on a pool with retry, timeout and failure capture.

    ``results[key]`` ends up either ``("ok", worker_result)`` or
    ``("failed", TrialFailure)``.  A :class:`BrokenProcessPool` escapes to
    the caller (the pool is unusable — remaining tasks need the serial
    fallback); every other exception is contained here.
    """

    def __init__(self, pool, task_fn, timeout, retries, backoff):
        self.pool = pool
        self.task_fn = task_fn
        self.timeout = timeout
        self.retries = max(0, retries)
        self.backoff = backoff
        self.futures = {}
        self.payloads = {}
        self.results = {}
        #: Monotonic wall-clock deadline per task, armed at *submit* time
        #: (and re-armed on each retry resubmission).  Resolution order
        #: must not grant extra budget: a task resolved last has been
        #: running since dispatch, so its clock started then too.
        self.deadlines = {}
        self.tracer = obs_trace.active_tracer()
        self.metrics = _active_metrics()

    def _arm_deadline(self, key) -> None:
        if self.timeout is not None:
            self.deadlines[key] = time.monotonic() + self.timeout

    def _remaining(self, key) -> Optional[float]:
        deadline = self.deadlines.get(key)
        if deadline is None:
            return None
        return max(0.0, deadline - time.monotonic())

    def submit(self, key, task_name: str, payload) -> None:
        self.payloads[key] = (task_name, payload)
        self.futures[key] = self.pool.submit(self.task_fn, payload)
        self._arm_deadline(key)
        if self.tracer is not None:
            self.tracer.event("task_dispatch", task=task_name)

    def resolve(self, key) -> None:
        """Block until ``key`` has a result (retrying as needed)."""
        if key in self.results:
            return
        task_name, payload = self.payloads[key]
        tracer = self.tracer
        attempt = 0
        while True:
            try:
                self.results[key] = (
                    "ok", self.futures[key].result(self._remaining(key))
                )
                return
            except BrokenProcessPool:
                raise  # pool is dead; caller falls back to serial
            except FuturesTimeout as exc:
                # The worker is stuck mid-task and still owns its pool
                # slot; resubmitting a deterministic stall would only
                # stall again, so timeouts are not retried.
                timeout_exc = TimeoutError(
                    f"task {task_name!r} exceeded {self.timeout}s wall clock"
                )
                timeout_exc.__cause__ = exc
                self.results[key] = (
                    "failed",
                    _worker_failure(task_name, timeout_exc, attempts=attempt + 1),
                )
                if tracer is not None:
                    tracer.event(
                        "task_timeout", task=task_name, timeout=self.timeout
                    )
                if self.metrics is not None:
                    self.metrics.inc(TIMEOUTS_METRIC)
                return
            except Exception as exc:
                if attempt >= self.retries:
                    self.results[key] = (
                        "failed",
                        _worker_failure(task_name, exc, attempts=attempt + 1),
                    )
                    if tracer is not None:
                        tracer.event(
                            "task_failed",
                            task=task_name,
                            attempts=attempt + 1,
                            error_type=type(exc).__name__,
                        )
                    return
                time.sleep(retry_delay(self.backoff, attempt, task_name))
                attempt += 1
                self.futures[key] = self.pool.submit(self.task_fn, payload)
                self._arm_deadline(key)
                if tracer is not None:
                    tracer.event(
                        "task_retry",
                        task=task_name,
                        attempt=attempt,
                        error_type=type(exc).__name__,
                    )
                if self.metrics is not None:
                    self.metrics.inc(RETRIES_METRIC)

    def unresolved(self) -> list:
        return [key for key in self.payloads if key not in self.results]


def _serial_fallback_report(
    func: Function,
    profile: Optional[ProfileData],
    form_kwargs: dict,
    plane: Optional[FaultPlane],
    record_events: bool,
) -> FunctionReport:
    """Form one function in-process after the pool broke.

    Worker-level fault kinds cannot be acted out in the parent (``kill``
    would take the driver down with it); any armed worker fault simply
    lands the task ``failed_safe`` un-formed, exactly what it converged to
    under the pool.
    """
    tracer = obs_trace.active_tracer()
    if tracer is not None:
        tracer.event("serial_fallback", task=func.name)
    metrics = _active_metrics()
    if metrics is not None:
        metrics.inc(SERIAL_FALLBACKS_METRIC)
    if plane is not None:
        kind = plane.worker_fault(func.name)
        if kind is not None:
            plane.record("worker", kind, func.name)
            exc = InjectedFault(
                f"injected worker fault in task {func.name!r} (serial fallback)"
            )
            exc.fault_kind = kind
            return _failed_safe_report(
                func.name, _worker_failure(func.name, exc), record_events
            )
    return form_function(func, profile=profile, **form_kwargs)


def form_module_parallel(
    module: Module,
    profile: Optional[ProfileData] = None,
    max_workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
    retries: int = DEFAULT_RETRIES,
    backoff: float = DEFAULT_BACKOFF,
    **form_kwargs,
) -> FormationReport:
    """Form every function of ``module`` across a process pool.

    ``form_kwargs`` are forwarded to :func:`form_function` (``constraints``,
    ``policy``, ``fast_path``, ``record_events``, ...) and must be picklable.
    The module's functions are replaced in place by their formed versions;
    the returned :class:`FormationReport` accumulates per-function reports
    in module order, so the result is identical to :func:`form_module` on
    the same input.

    A worker failure (exception after ``retries`` attempts, ``task_timeout``
    exceeded, or a worker death breaking the pool) costs only its own task:
    the function keeps its pre-formation CFG and lands ``failed_safe`` in
    the report while its siblings form normally.  After a broken pool,
    unfinished tasks run in-process instead.

    Falls back to the sequential driver when the module has at most one
    function, when ``max_workers == 1``, or — in auto mode
    (``max_workers=None``) — when the module is smaller than
    ``AUTO_SERIAL_MAX_BLOCKS`` basic blocks, where the pool's start-up
    and pickling overhead dwarfs formation time.
    """
    record_events = form_kwargs.get("record_events", True)
    names = list(module.functions)
    if len(names) <= 1 or _auto_serial((module,), max_workers):
        return form_module(module, profile=profile, **form_kwargs)

    plane = active_plane()
    tracer = obs_trace.active_tracer()
    trace_on = tracer is not None
    # Schedule biggest functions first so the pool drains evenly.
    order = sorted(names, key=lambda n: (-module.functions[n].size(), n))
    report = FormationReport(stats=MergeStats(record_events=record_events))
    pool = ProcessPoolExecutor(max_workers=max_workers)
    try:
        supervisor = _TaskSupervisor(
            pool, _form_one, task_timeout, retries, backoff
        )
        for name in order:
            supervisor.submit(
                name,
                name,
                (module.functions[name], profile, form_kwargs, plane, trace_on),
            )
        try:
            for name in names:
                supervisor.resolve(name)
        except BrokenProcessPool as exc:
            _absorb_broken_pool(supervisor, exc)
    finally:
        # No ``with`` block: its exit would re-join the workers and a
        # stalled task would hold the driver hostage past its timeout.
        pool.shutdown(wait=False, cancel_futures=True)

    for name in names:  # accumulate in module order, not completion order
        status, value = supervisor.results[name]
        if status == "failed":
            if _is_broken_pool_failure(value):
                freport = _serial_fallback_report(
                    module.functions[name], profile, form_kwargs, plane,
                    record_events,
                )
            else:
                freport = _failed_safe_report(name, value, record_events)
        else:
            formed, freport, fragment = value
            module.functions[name] = formed
            if tracer is not None and fragment:
                tracer.absorb(fragment, task=name)
        report.add_function(freport)
    return report


def _is_broken_pool_failure(failure: TrialFailure) -> bool:
    return failure.error_type == "BrokenProcessPool"


def _absorb_broken_pool(supervisor: _TaskSupervisor, exc: BaseException) -> None:
    """Mark every unresolved task as a broken-pool casualty.

    The pool cannot run anything anymore; pending futures would all raise
    the same :class:`BrokenProcessPool`.  The driver re-runs these tasks
    in-process afterwards.
    """
    tracer = supervisor.tracer
    for key in supervisor.unresolved():
        task_name, _ = supervisor.payloads[key]
        supervisor.results[key] = ("failed", _worker_failure(task_name, exc))
        if tracer is not None:
            tracer.event("pool_broken", task=task_name)


def form_many_parallel(
    items: Sequence[tuple[Module, Optional[ProfileData]]],
    max_workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
    retries: int = DEFAULT_RETRIES,
    backoff: float = DEFAULT_BACKOFF,
    driver: str = "pool",
    **form_kwargs,
) -> list[tuple[Module, FormationReport]]:
    """Form many independent (module, profile) pairs across a process pool.

    This is the shape benchmark suites have — many small modules — where
    per-function fan-out would starve the pool.  Returns ``(formed module,
    report)`` pairs in input order.  Note the *returned* modules are the
    formed ones (round-tripped through the pool); the caller's input
    modules are left untouched.

    A failed module task returns the caller's *original* module with a
    report marking every function ``failed_safe``; a broken pool re-runs
    the unfinished modules in-process.

    ``driver`` selects the execution engine behind the same interface:
    ``"pool"`` (this module's pool-per-run supervisor), ``"fleet"`` (the
    persistent daemon-worker fleet of :mod:`repro.harness.fleet` — worker
    death respawns one worker instead of breaking the run), or
    ``"serial"`` (in-process, the reference).  Bench and selfcheck race
    drivers against each other through this switch.

    Auto mode (``max_workers=None``) stays sequential below
    ``AUTO_SERIAL_MAX_BLOCKS`` total basic blocks, like
    :func:`form_module_parallel`.
    """
    if driver not in ("pool", "fleet", "serial"):
        raise ValueError(
            f"unknown driver {driver!r} (want 'pool', 'fleet' or 'serial')"
        )
    record_events = form_kwargs.get("record_events", True)
    if (
        driver == "serial"
        or len(items) <= 1
        or _auto_serial((module for module, _ in items), max_workers)
    ):
        out = []
        for module, profile in items:
            report = form_module(module, profile=profile, **form_kwargs)
            out.append((module, report))
        return out
    if driver == "fleet":
        from repro.harness.fleet import form_many_fleet

        return form_many_fleet(
            items,
            max_workers=max_workers,
            task_timeout=task_timeout,
            retries=retries,
            backoff=backoff,
            **form_kwargs,
        )

    plane = active_plane()
    tracer = obs_trace.active_tracer()
    trace_on = tracer is not None
    indexed = sorted(
        range(len(items)), key=lambda i: (-items[i][0].size(), items[i][0].name)
    )
    pool = ProcessPoolExecutor(max_workers=max_workers)
    try:
        supervisor = _TaskSupervisor(
            pool, _form_module_task, task_timeout, retries, backoff
        )
        for i in indexed:
            module, profile = items[i]
            supervisor.submit(
                i, module.name, (module, profile, form_kwargs, plane, trace_on)
            )
        try:
            for i in range(len(items)):
                supervisor.resolve(i)
        except BrokenProcessPool as exc:
            _absorb_broken_pool(supervisor, exc)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)

    out = []
    for i in range(len(items)):
        status, value = supervisor.results[i]
        if status == "failed":
            # Copy before fallback: the caller's input modules stay
            # untouched on every path, like the pooled round-trip.
            module = items[i][0].copy()
            profile = items[i][1]
            if _is_broken_pool_failure(value):
                out.append(
                    (module, _module_serial_fallback(
                        module, profile, form_kwargs, plane, record_events
                    ))
                )
            else:
                out.append(
                    (module, _module_failed_safe(module, value, record_events))
                )
        else:
            formed, mreport, fragment = value
            if tracer is not None and fragment:
                tracer.absorb(fragment, task=formed.name)
            out.append((formed, mreport))
    return out


def _module_failed_safe(
    module: Module, failure: TrialFailure, record_events: bool
) -> FormationReport:
    """Report for a module whose worker task was written off entirely."""
    report = FormationReport(stats=MergeStats(record_events=record_events))
    for func in module:
        per_func = TrialFailure(
            function=func.name,
            stage=failure.stage,
            error_type=failure.error_type,
            error=failure.error,
            traceback=failure.traceback,
            fault_kind=failure.fault_kind,
        )
        report.add_function(
            _failed_safe_report(func.name, per_func, record_events)
        )
    return report


def _module_serial_fallback(
    module: Module,
    profile: Optional[ProfileData],
    form_kwargs: dict,
    plane: Optional[FaultPlane],
    record_events: bool,
) -> FormationReport:
    """Re-form a module in-process after a broken pool (see
    :func:`_serial_fallback_report` for the worker-fault handling)."""
    tracer = obs_trace.active_tracer()
    if tracer is not None:
        tracer.event("serial_fallback", task=module.name)
    metrics = _active_metrics()
    if metrics is not None:
        metrics.inc(SERIAL_FALLBACKS_METRIC)
    if plane is not None:
        kind = plane.worker_fault(module.name)
        if kind is not None:
            plane.record("worker", kind, module.name)
            exc = InjectedFault(
                f"injected worker fault in task {module.name!r} (serial fallback)"
            )
            exc.fault_kind = kind
            return _module_failed_safe(
                module, _worker_failure(module.name, exc), record_events
            )
    return form_module(module, profile=profile, **form_kwargs)
