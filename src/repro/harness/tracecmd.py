"""The ``trace`` and ``stats`` CLI verbs: record a formation run's
decision trace and answer questions from it.

``trace`` forms one SPEC workload with a tracer installed and prints the
decision record — every offer, trial, rejection (with the structural
constraint that fired), acceptance and guard action.  ``--why HB,TARGET``
narrows the output to the full decision path of one (hyperblock, target)
pair: the paper's "why did this merge happen / get rejected" question,
answered from the trace instead of a debugger.  ``--jsonl`` and
``--chrome`` export the raw events (one JSON object per line) and a
Chrome ``chrome://tracing`` / Perfetto file.

``stats`` runs the same traced formation and aggregates: the slowest
trials, the rejection-reason breakdown (split by structural constraint),
and the per-function phase table whose shares are computed over span
*self time* — the ``liveness`` phase nests inside ``commit``, so commit
is charged its self time only and the shares sum to ~100%.
"""

from __future__ import annotations

from typing import Optional

from repro.core.convergent import form_module
from repro.obs.metrics import MetricsRegistry
from repro.obs.sink import JsonlSink, MemorySink, write_chrome_trace
from repro.obs.trace import FormationTrace, TraceEvent, Tracer, tracing
from repro.profiles import collect_profile
from repro.workloads.spec import SPEC_BENCHMARKS, SPEC_ORDER


def record_formation_trace(
    workload_name: str,
    jsonl: Optional[str] = None,
    registry: Optional[MetricsRegistry] = None,
) -> tuple[FormationTrace, object, MetricsRegistry, object]:
    """Form one SPEC workload under a fresh tracer.

    Returns ``(trace, formation report, metrics registry, formed
    module)``.  Setup (module build, profile collection) happens outside
    the trace so the record is purely about formation decisions; the
    formed module rides along so callers can render what the decisions
    produced (``--dot``).
    """
    if workload_name not in SPEC_BENCHMARKS:
        raise SystemExit(
            f"unknown workload {workload_name!r}; "
            f"available: {', '.join(SPEC_ORDER)}"
        )
    workload = SPEC_BENCHMARKS[workload_name]
    module = workload.module()
    profile = collect_profile(
        module, args=workload.args, preload=workload.preload
    )
    if registry is None:
        registry = MetricsRegistry()
    sinks: list = [MemorySink()]
    jsonl_sink: Optional[JsonlSink] = None
    if jsonl:
        jsonl_sink = JsonlSink(jsonl)
        sinks.append(jsonl_sink)
    tracer = Tracer(sinks=sinks, metrics=registry)
    try:
        with tracing(tracer):
            report = form_module(module, profile=profile)
    finally:
        # Deterministic flush even when formation raises: whatever was
        # traced is complete lines on disk (close is idempotent; the
        # tracer's finish() below closes the sink again harmlessly).
        if jsonl_sink is not None:
            jsonl_sink.close()
    return tracer.finish(), report, registry, module


# ---------------------------------------------------------------------------
# trace rendering
# ---------------------------------------------------------------------------


_VERDICT_EVENTS = frozenset({"accept", "reject"})


def _format_event(event: TraceEvent, depth: int) -> str:
    attrs = event.attrs
    parts = [("  " * depth) + event.name]
    pair = attrs.get("hb"), attrs.get("target")
    if pair[0] is not None and pair[1] is not None:
        parts.append(f"{pair[0]}<-{pair[1]}")
    elif "function" in attrs:
        parts.append(attrs["function"])
    elif "task" in attrs and event.name.startswith(("task_", "pool_", "serial_")):
        parts.append(attrs["task"])
    if event.name == "reject":
        reason = attrs.get("reason", "?")
        parts.append(f"[{reason}]")
        if reason == "constraint":
            parts.append("+".join(attrs.get("constraints", ())))
    elif event.name == "accept":
        parts.append(f"kind={attrs.get('kind')} removed={attrs.get('removed')}")
    elif event.name == "trial":
        verdict = "committed" if attrs.get("committed") else "rejected"
        parts.append(verdict)
    if event.dur is not None:
        parts.append(f"({event.dur * 1e3:.3f}ms)")
    return " ".join(str(p) for p in parts)


def _render_tree(trace: FormationTrace, events, depth: int, out: list[str]) -> None:
    for event in events:
        out.append(_format_event(event, depth))
        _render_tree(trace, trace.children(event.span_id), depth + 1, out)


def explain_decision_data(trace: FormationTrace, hb: str, target: str) -> dict:
    """Machine-readable ``--why``: the pair's event path and verdict.

    The same selection as :func:`_explain_decision`, shaped for tooling
    (``trace --why ... --json``): raw events via ``as_dict`` plus a
    one-object verdict summary.
    """
    path = trace.decision_path(hb, target)
    verdict = None
    for event in path:
        if event.name in _VERDICT_EVENTS:
            verdict = event
    data: dict = {
        "hb": hb,
        "target": target,
        "found": bool(path),
        "path": [event.as_dict() for event in path],
    }
    if verdict is None:
        data["verdict"] = None
    else:
        summary = {"event": verdict.name}
        for key in ("kind", "removed", "reason", "constraints",
                    "violations", "estimate"):
            if key in verdict.attrs:
                summary[key] = verdict.attrs[key]
        data["verdict"] = summary
    return data


def _explain_decision(trace: FormationTrace, hb: str, target: str) -> str:
    path = trace.decision_path(hb, target)
    if not path:
        pairs = sorted(
            {
                (e.attrs["hb"], e.attrs["target"])
                for e in trace.named("offer")
                if "hb" in e.attrs and "target" in e.attrs
            }
        )
        listing = ", ".join(f"{h},{t}" for h, t in pairs) or "<none>"
        return (
            f"no events for pair ({hb}, {target}); offered pairs: {listing}"
        )
    lines = [f"decision path for {hb} <- {target}:"]
    ids = {e.span_id for e in path}
    for event in path:
        depth = 1 if event.parent_id not in ids else 2
        lines.append(_format_event(event, depth))
    # One-line verdict so the answer does not have to be read out of the
    # tree: the final accept/reject for the pair.
    verdict = None
    for event in path:
        if event.name in _VERDICT_EVENTS:
            verdict = event
    if verdict is None:
        lines.append("  => never reached a trial verdict")
    elif verdict.name == "accept":
        lines.append(
            f"  => merged (kind={verdict.attrs.get('kind')}, "
            f"removed {verdict.attrs.get('removed')})"
        )
    else:
        reason = verdict.attrs.get("reason")
        detail = ""
        if reason == "constraint":
            detail = ": " + "; ".join(verdict.attrs.get("violations", ()))
        lines.append(f"  => rejected ({reason}{detail})")
    return "\n".join(lines)


def run_trace(
    workload: str,
    why: Optional[str] = None,
    jsonl: Optional[str] = None,
    chrome: Optional[str] = None,
    dot: Optional[str] = None,
    as_json: bool = False,
) -> str:
    """The ``trace`` verb: record, export, and render one formation run.

    ``dot`` is a filename prefix: each formed function is written to
    ``<prefix><function>.dot`` with hyperblocks striped by originating
    basic block (see :func:`repro.ir.dot.merge_provenance`), the visual
    side of a drift report's before/after.  ``as_json`` renders the run
    (and the ``--why`` explanation) as a JSON document instead of the
    tree, with the decision stream in flight-recorder record form.
    """
    trace, report, _, module = record_formation_trace(workload, jsonl=jsonl)
    if as_json:
        import json as _json

        from repro.obs.replay import log_from_trace

        data: dict = {
            "workload": workload,
            "events": len(trace),
            "dropped": trace.dropped,
            "event_counts": trace.event_counts(),
            "formation": {
                name: {"status": str(status), "mtup": list(mtup)}
                for name, (status, mtup) in report.summary().items()
            },
            "decisions": log_from_trace(trace),
        }
        if chrome:
            write_chrome_trace(
                trace.events, chrome, meta={"workload": workload}
            )
        if why:
            try:
                hb, target = (part.strip() for part in why.split(",", 1))
            except ValueError:
                raise SystemExit(
                    f"--why wants 'HB,TARGET' (e.g. --why b0,b3), "
                    f"got {why!r}"
                )
            data["why"] = explain_decision_data(trace, hb, target)
        return _json.dumps(data, indent=2, sort_keys=True)
    lines = [
        f"trace: {workload}: {len(trace)} events"
        + (f" ({trace.dropped} dropped)" if trace.dropped else ""),
        "  " + ", ".join(
            f"{name}={count}" for name, count in trace.event_counts().items()
        ),
        "  formation: " + ", ".join(
            f"{name}={status}:{mtup}"
            for name, (status, mtup) in report.summary().items()
        ),
    ]
    if chrome:
        write_chrome_trace(trace.events, chrome, meta={"workload": workload})
        lines.append(f"  chrome trace written to {chrome}")
    if jsonl:
        lines.append(f"  jsonl written to {jsonl}")
    if dot:
        from repro.ir.dot import function_to_dot, merge_provenance

        for func in module:
            path = f"{dot}{func.name}.dot"
            provenance = merge_provenance(trace, function=func.name)
            with open(path, "w") as handle:
                handle.write(
                    function_to_dot(func, provenance=provenance) + "\n"
                )
            lines.append(f"  dot written to {path}")
    if why:
        try:
            hb, target = (part.strip() for part in why.split(",", 1))
        except ValueError:
            raise SystemExit(
                f"--why wants 'HB,TARGET' (e.g. --why b0,b3), got {why!r}"
            )
        lines.append("")
        lines.append(_explain_decision(trace, hb, target))
    else:
        lines.append("")
        _render_tree(trace, trace.roots(), 0, lines)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# stats rendering
# ---------------------------------------------------------------------------


def phase_table(trace: FormationTrace) -> dict[str, dict[str, float]]:
    """Per-function phase self-times, in seconds.

    ``liveness`` spans nest inside ``commit`` spans, so commit is charged
    its *self* time (total minus nested liveness); every other phase has
    no nested phases.  The returned shares therefore sum to ~100% of
    phase-attributed time.
    """
    from repro.obs.trace import PHASE_SPANS

    nested_liveness: dict[Optional[int], float] = {}
    for event in trace.events:
        if event.name == "liveness" and event.dur is not None:
            nested_liveness[event.parent_id] = (
                nested_liveness.get(event.parent_id, 0.0) + event.dur
            )
    table: dict[str, dict[str, float]] = {}
    for event in trace.events:
        if event.name not in PHASE_SPANS or event.dur is None:
            continue
        func = event.attrs.get("function", "<module>")
        dur = event.dur
        if event.name == "commit":
            dur -= nested_liveness.get(event.span_id, 0.0)
        row = table.setdefault(func, {})
        row[event.name] = row.get(event.name, 0.0) + dur
    return table


def rejection_breakdown(trace: FormationTrace) -> dict[str, int]:
    """Counts by rejection reason; constraint rejects split per constraint
    kind as ``constraint:<kind>`` (a trial violating two limits counts
    under both)."""
    out: dict[str, int] = {}
    for event in trace.named("reject"):
        reason = event.attrs.get("reason", "?")
        out[reason] = out.get(reason, 0) + 1
        if reason == "constraint":
            for kind in event.attrs.get("constraints", ()):
                key = f"constraint:{kind}"
                out[key] = out.get(key, 0) + 1
    return out


def slowest_trials(trace: FormationTrace, top: int) -> list[TraceEvent]:
    trials = [e for e in trace.spans("trial")]
    trials.sort(key=lambda e: -(e.dur or 0.0))
    return trials[:top]


def stats_data(workload: str, top: int = 10) -> dict:
    """Machine-readable ``stats``: the same aggregates the table renders."""
    trace, report, registry, _ = record_formation_trace(workload)
    snapshot = registry.snapshot()
    return {
        "workload": workload,
        "events": len(trace),
        "event_counts": trace.event_counts(),
        "slowest_trials": [
            {
                "function": event.attrs.get("function"),
                "hb": event.attrs.get("hb"),
                "target": event.attrs.get("target"),
                "dur_s": event.dur,
                "committed": bool(event.attrs.get("committed")),
            }
            for event in slowest_trials(trace, top)
        ],
        "rejections": rejection_breakdown(trace),
        "phase_table_s": phase_table(trace),
        "phase_histogram": list(
            snapshot.get("formation_phase_seconds", ())
        ),
        "recovery_counters": {
            name: entries
            for name, entries in sorted(snapshot.items())
            if name.endswith("_total")
            and any(entry.get("value") for entry in entries)
        },
        "formation": {
            name: {"status": str(status), "mtup": list(mtup)}
            for name, (status, mtup) in report.summary().items()
        },
    }


def run_stats(workload: str, top: int = 10, as_json: bool = False) -> str:
    """The ``stats`` verb: aggregate one traced formation run."""
    if as_json:
        import json as _json

        return _json.dumps(stats_data(workload, top=top), indent=2,
                           sort_keys=True)
    trace, report, registry, _ = record_formation_trace(workload)
    lines = [f"stats: {workload}: {len(trace)} events"]

    lines.append(f"  top {top} slowest trials:")
    for event in slowest_trials(trace, top):
        attrs = event.attrs
        verdict = "committed" if attrs.get("committed") else "rejected"
        lines.append(
            f"    {attrs.get('function')}: {attrs.get('hb')} <- "
            f"{attrs.get('target')}  {event.dur * 1e3:.3f}ms  {verdict}"
        )

    breakdown = rejection_breakdown(trace)
    lines.append("  rejections:")
    if breakdown:
        for reason in sorted(breakdown):
            lines.append(f"    {reason:<28} {breakdown[reason]}")
    else:
        lines.append("    <none>")

    table = phase_table(trace)
    grand_total = sum(sum(row.values()) for row in table.values())
    lines.append("  phase table (self time):")
    header = f"    {'function':<16}" + "".join(
        f"{phase:>12}" for phase in _PHASE_ORDER
    ) + f"{'total':>12}{'share':>8}"
    lines.append(header)
    for func in sorted(table):
        row = table[func]
        total = sum(row.values())
        cells = "".join(
            f"{row.get(phase, 0.0) * 1e3:>10.2f}ms" for phase in _PHASE_ORDER
        )
        share = total / grand_total if grand_total else 0.0
        lines.append(f"    {func:<16}{cells}{total * 1e3:>10.2f}ms{share:>8.1%}")

    snapshot = registry.snapshot()
    hist = snapshot.get("formation_phase_seconds", ())
    if hist:
        lines.append("  phase histogram (all functions):")
        for entry in sorted(hist, key=lambda e: -e.get("sum", 0.0)):
            phase = entry["labels"].get("phase", "?")
            lines.append(
                f"    {phase:<12} n={entry['count']:<6} "
                f"sum={entry['sum'] * 1e3:.2f}ms"
            )

    # Driver recovery counters (retries/timeouts/serial fallbacks, fleet
    # respawns/requeues/...) — zero on a clean serial run, so the section
    # only appears when a parallel driver actually recovered something.
    recovery = [
        (name, entry)
        for name, entries in sorted(snapshot.items())
        if name.endswith("_total")
        for entry in entries
        if entry.get("value")
    ]
    if recovery:
        lines.append("  driver recovery counters:")
        for name, entry in recovery:
            labels = entry.get("labels") or {}
            suffix = (
                " {" + ", ".join(
                    f"{k}={v}" for k, v in sorted(labels.items())
                ) + "}"
                if labels
                else ""
            )
            lines.append(f"    {name}{suffix:<24} {entry['value']}")
    return "\n".join(lines)


_PHASE_ORDER = ("optimize", "estimate", "commit", "liveness", "oracle")
