"""``python -m repro.harness top`` — live fleet view over the metrics
endpoint.

Polls ``/snapshot.json`` from a run started with ``--expose PORT``
(fleet, bench or selfcheck) and redraws an ANSI terminal view: one row
per worker (lease state, heartbeat age, jobs done, throughput, RSS,
merges) over a totals header (jobs, requeues, quarantines, rejection
breakdown, cache hit rates, phase shares).  ``top`` is a pure *reader*
— it talks HTTP to the exposition endpoint and can run from a different
terminal, a different user, or not at all; the run neither knows nor
cares.

Rendering is plain ANSI (cursor-home + clear-to-end per frame, no
curses) so it works over ssh and inside CI logs; ``--once`` prints a
single frame without any escape codes, which is also what the tests
exercise.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import Optional

from repro.obs import live as obs_live

#: Redraw: cursor home + erase-below keeps the frame flicker-free
#: (a full-screen erase per frame makes terminals blink).
ANSI_HOME_CLEAR = "\x1b[H\x1b[J"

DEFAULT_INTERVAL = 1.0


def fetch_snapshot(url: str, timeout: float = 2.0) -> dict:
    """GET ``<url>/snapshot.json`` (raises ``urllib.error.URLError``)."""
    with urllib.request.urlopen(
        url.rstrip("/") + "/snapshot.json", timeout=timeout
    ) as response:
        return json.loads(response.read().decode())


def _metric_value(snapshot: dict, name: str, **labels) -> float:
    """Sum of ``name``'s entries matching the given label subset."""
    total = 0.0
    for entry in snapshot.get(name, ()):
        entry_labels = entry.get("labels", {})
        if all(entry_labels.get(k) == v for k, v in labels.items()):
            total += entry.get("value", entry.get("sum", 0.0)) or 0.0
    return total


def _label_totals(snapshot: dict, name: str, label: str) -> dict[str, float]:
    """``{label value: summed count}`` across one metric's entries."""
    out: dict[str, float] = {}
    for entry in snapshot.get(name, ()):
        key = entry.get("labels", {}).get(label)
        if key is not None:
            value = entry.get("value", entry.get("count", 0)) or 0
            out[key] = out.get(key, 0.0) + value
    return out


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024
    return f"{n:.1f}GiB"


def _hit_rate(snapshot: dict, name: str) -> Optional[float]:
    hits = _metric_value(snapshot, name, outcome="hit")
    misses = _metric_value(snapshot, name, outcome="miss")
    total = hits + misses
    return hits / total if total else None


def render_top(
    snapshot: dict,
    previous: Optional[dict] = None,
    interval: float = DEFAULT_INTERVAL,
) -> str:
    """One frame of the live view as plain text (no escape codes).

    ``previous`` (the prior poll's snapshot) turns cumulative counters
    into rates — per-worker throughput is the ``jobs_done`` delta over
    the poll interval.
    """
    lines: list[str] = []

    jobs_ok = _metric_value(snapshot, "fleet_jobs_total", outcome="ok")
    jobs_failed = _metric_value(
        snapshot, "fleet_jobs_total", outcome="failed"
    )
    requeues = _metric_value(snapshot, "fleet_requeues_total")
    quarantined = _metric_value(snapshot, "fleet_quarantined_total")
    respawns = _metric_value(snapshot, "fleet_respawns_total")
    merges = _metric_value(snapshot, "formation_merges_total")
    attempts = _metric_value(snapshot, "formation_attempts_total")
    lines.append(
        f"formation fleet — jobs {jobs_ok:.0f} ok / {jobs_failed:.0f} "
        f"failed | requeues {requeues:.0f} | respawns {respawns:.0f} | "
        f"quarantined {quarantined:.0f} | merges {merges:.0f} "
        f"(attempts {attempts:.0f})"
    )

    rejections = _label_totals(
        snapshot, "formation_rejections_total", "reason"
    )
    if rejections:
        breakdown = ", ".join(
            f"{reason} {count:.0f}"
            for reason, count in sorted(
                rejections.items(), key=lambda kv: -kv[1]
            )
        )
        lines.append(f"rejections: {breakdown}")
    caches = []
    trial = _hit_rate(snapshot, "formation_trial_cache_total")
    if trial is not None:
        caches.append(f"trial memo {trial:.0%}")
    use_kill = _hit_rate(snapshot, "formation_use_kill_cache_total")
    if use_kill is not None:
        caches.append(f"use/kill {use_kill:.0%}")
    if caches:
        lines.append("cache hit rates: " + ", ".join(caches))

    phases = _label_totals(snapshot, "formation_phase_seconds", "phase")
    total_phase = sum(phases.values())
    if total_phase > 0:
        shares = ", ".join(
            f"{phase} {dur / total_phase:.0%}"
            for phase, dur in sorted(phases.items(), key=lambda kv: -kv[1])
        )
        lines.append(f"phase time: {shares}")

    workers = obs_live.worker_series(snapshot)
    prev_workers = (
        obs_live.worker_series(previous) if previous else {}
    )
    if workers:
        lines.append("")
        lines.append(
            f"{'worker':<8} {'lease':<6} {'hb age':>8} {'done':>6} "
            f"{'jobs/s':>7} {'rss':>10} {'merges':>7} {'rejects':>8}"
        )
        for worker in sorted(workers, key=_worker_sort_key):
            row = workers[worker]
            leased = _row_value(row, obs_live.WORKER_LEASE_STATE_GAUGE)
            hb_age = _row_value(
                row, obs_live.WORKER_HEARTBEAT_AGE_GAUGE
            )
            done = _row_value(row, obs_live.WORKER_JOBS_DONE_GAUGE)
            rss = _row_value(row, obs_live.WORKER_RSS_GAUGE)
            prev_done = _row_value(
                prev_workers.get(worker, {}), obs_live.WORKER_JOBS_DONE_GAUGE
            )
            rate = (
                max(0.0, done - prev_done) / interval
                if previous is not None and interval > 0
                else 0.0
            )
            worker_merges = sum(
                entry.get("value", 0) or 0
                for key, entry in row.items()
                if key.startswith("formation_merges_total")
            )
            worker_rejects = sum(
                entry.get("value", 0) or 0
                for key, entry in row.items()
                if key.startswith("formation_rejections_total")
            )
            lines.append(
                f"{worker:<8} "
                f"{'BUSY' if leased else 'idle':<6} "
                f"{hb_age:>7.2f}s "
                f"{done:>6.0f} "
                f"{rate:>7.1f} "
                f"{_fmt_bytes(rss):>10} "
                f"{worker_merges:>7.0f} "
                f"{worker_rejects:>8.0f}"
            )
    else:
        lines.append("")
        lines.append(
            "no per-worker series yet — waiting for the first heartbeats "
            "(is this a fleet run?)"
        )
    return "\n".join(lines)


def _row_value(row: dict, name: str) -> float:
    entry = row.get(name)
    if entry is None:
        return 0.0
    return entry.get("value", 0.0) or 0.0


def _worker_sort_key(worker: str):
    # "w0" < "w2" < "w10" — numeric when the label follows the fleet's
    # convention, lexicographic otherwise.
    if worker.startswith("w") and worker[1:].isdigit():
        return (0, int(worker[1:]))
    return (1, worker)


def run_top(
    url: str,
    interval: float = DEFAULT_INTERVAL,
    frames: Optional[int] = None,
    once: bool = False,
    out=None,
) -> int:
    """Poll-and-redraw loop; returns the process exit code.

    ``once`` prints a single plain frame (no escape codes, no loop).
    ``frames`` bounds the number of redraws (None = until interrupted
    or the endpoint goes away — a finished run tears its server down,
    which ``top`` reports as a normal end, exit 0, after having seen at
    least one frame).
    """
    out = out if out is not None else sys.stdout
    previous: Optional[dict] = None
    seen_any = False
    drawn = 0
    while True:
        try:
            snapshot = fetch_snapshot(url)
        except (urllib.error.URLError, OSError, ValueError) as exc:
            if seen_any:
                print(
                    f"\nendpoint {url} went away ({exc}) — run finished",
                    file=out,
                )
                return 0
            print(
                f"cannot reach {url}: {exc}\n"
                "start a run with --expose PORT first, e.g.\n"
                "  python -m repro.harness fleet --corpus 10x --expose 9100",
                file=out,
            )
            return 1
        seen_any = True
        frame = render_top(snapshot, previous, interval=interval)
        if once:
            print(frame, file=out)
            return 0
        stamp = time.strftime("%H:%M:%S")
        print(
            f"{ANSI_HOME_CLEAR}{frame}\n\n"
            f"[{stamp}] polling {url} every {interval:g}s — ctrl-c to quit",
            file=out,
            flush=True,
        )
        previous = snapshot
        drawn += 1
        if frames is not None and drawn >= frames:
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0
