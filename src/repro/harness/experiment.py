"""Experiment runner: compiles and simulates workloads under the paper's
configurations, checking semantic equivalence of every compiled variant.

This is the machinery behind Tables 1-3 and Figure 7; the table-specific
drivers live in :mod:`repro.harness.tables`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.constraints import TripsConstraints
from repro.core.convergent import form_module
from repro.core.merge import MergeStats
from repro.core.phases import compile_with_ordering, phase_unroll_peel_bb
from repro.core.policies import (
    BreadthFirstPolicy,
    DepthFirstPolicy,
    VLIWPolicy,
)
from repro.ir.function import Module
from repro.ir.verify import verify_module
from repro.opt.pipeline import optimize_module
from repro.profiles.collect import collect_profile
from repro.profiles.data import ProfileData
from repro.sim.functional import run_module
from repro.sim.machine import MachineConfig
from repro.sim.timing import simulate_cycles
from repro.workloads.microbench import Workload


class ExperimentError(Exception):
    """Raised when a compiled configuration changes program behaviour."""


@dataclass
class RunResult:
    """One (workload, configuration) measurement."""

    workload: str
    config: str
    cycles: int
    dynamic_blocks: int
    mispredictions: int
    static_blocks: int
    mtup: tuple[int, int, int, int] = (0, 0, 0, 0)

    def improvement_over(self, baseline: "RunResult") -> float:
        """Percent cycle improvement relative to ``baseline``."""
        if baseline.cycles == 0:
            return 0.0
        return 100.0 * (baseline.cycles - self.cycles) / baseline.cycles

    def block_improvement_over(self, baseline: "RunResult") -> float:
        if baseline.dynamic_blocks == 0:
            return 0.0
        return (
            100.0
            * (baseline.dynamic_blocks - self.dynamic_blocks)
            / baseline.dynamic_blocks
        )


#: A configuration: name plus a transform applied to (module, profile).
Configurator = Callable[[Module, ProfileData], MergeStats]


def ordering_config(ordering: str, policy_factory=None) -> Configurator:
    def apply(module: Module, profile: ProfileData) -> MergeStats:
        policy = policy_factory() if policy_factory else None
        return compile_with_ordering(module, ordering, profile, policy=policy)

    return apply


def heuristic_config(name: str) -> Configurator:
    """Table 2 configurations."""

    def vliw_discrete(module: Module, profile: ProfileData) -> MergeStats:
        constraints = TripsConstraints()
        phase_unroll_peel_bb(module, profile, constraints)
        stats = form_module(
            module,
            profile=profile,
            policy=VLIWPolicy(),
            constraints=constraints,
            optimize_during=False,
            allow_head_dup=False,
        )
        optimize_module(module)
        return stats

    def vliw_convergent(module: Module, profile: ProfileData) -> MergeStats:
        # The same block-selection heuristic and unroll prepass as the
        # discrete VLIW column, but with iterative optimization inside the
        # merge loop — isolating the paper's "with iterative optimization"
        # comparison (Table 2, columns 3 vs 4).
        constraints = TripsConstraints()
        phase_unroll_peel_bb(module, profile, constraints)
        stats = form_module(
            module,
            profile=profile,
            policy=VLIWPolicy(),
            constraints=constraints,
            optimize_during=True,
            allow_head_dup=False,
        )
        optimize_module(module)
        return stats

    def convergent(policy_factory) -> Configurator:
        def apply(module: Module, profile: ProfileData) -> MergeStats:
            stats = form_module(
                module,
                profile=profile,
                policy=policy_factory(),
                constraints=TripsConstraints(),
                optimize_during=True,
                allow_head_dup=True,
            )
            optimize_module(module)
            return stats

        return apply

    table = {
        "VLIW": vliw_discrete,
        "Convergent VLIW": vliw_convergent,
        "DF": convergent(DepthFirstPolicy),
        "BF": convergent(BreadthFirstPolicy),
    }
    return table[name]


@dataclass
class WorkloadExperiment:
    """Runs one workload under many configurations with cross-checking."""

    workload: Workload
    machine: Optional[MachineConfig] = None
    timing: bool = True  # False = functional block counts only (Table 3)
    max_blocks: int = 5_000_000
    results: dict[str, RunResult] = field(default_factory=dict)
    _reference: object = None

    def _measure(self, module: Module, config_name: str, mtup) -> RunResult:
        wl = self.workload
        result, fstats, memory = run_module(
            module.copy(),
            args=wl.args,
            preload={k: list(v) for k, v in wl.preload.items()},
            max_blocks=self.max_blocks,
        )
        if self._reference is None:
            self._reference = (result, memory)
        elif (result, memory) != self._reference:
            raise ExperimentError(
                f"{wl.name}/{config_name}: compiled program output differs "
                f"({result!r} != {self._reference[0]!r})"
            )
        cycles = 0
        mispredictions = 0
        if self.timing:
            tstats = simulate_cycles(
                module,
                args=wl.args,
                preload={k: list(v) for k, v in wl.preload.items()},
                config=self.machine,
                max_blocks=self.max_blocks,
            )
            cycles = tstats.cycles
            mispredictions = tstats.mispredictions
        run = RunResult(
            workload=wl.name,
            config=config_name,
            cycles=cycles,
            dynamic_blocks=fstats.blocks_executed,
            mispredictions=mispredictions,
            static_blocks=sum(len(f.blocks) for f in module),
            mtup=mtup,
        )
        self.results[config_name] = run
        return run

    def run(self, configs: dict[str, Configurator]) -> dict[str, RunResult]:
        base = self.workload.module()
        profile = collect_profile(
            base.copy(),
            args=self.workload.args,
            preload={k: list(v) for k, v in self.workload.preload.items()},
            max_blocks=self.max_blocks,
        )
        self._measure(base.copy(), "BB", (0, 0, 0, 0))
        for name, configure in configs.items():
            module = base.copy()
            stats = configure(module, profile)
            verify_module(module)
            self._measure(module, name, stats.mtup)
        return self.results
