"""Experiment harness regenerating the paper's tables and figures."""

from repro.harness.experiment import (
    ExperimentError,
    RunResult,
    WorkloadExperiment,
    heuristic_config,
    ordering_config,
)
from repro.harness.bench import format_report, run_bench, write_json
from repro.harness.fleet import (
    Fleet,
    FleetConfig,
    form_many_fleet,
    run_fleet_corpus,
    run_fleet_drill,
)
from repro.harness.occupancy import OccupancyReport, occupancy_report
from repro.harness.parallel import form_many_parallel, form_module_parallel
from repro.harness.selfcheck import run_fault_drill, run_selfcheck
from repro.harness.tables import (
    RegressionResult,
    TableResult,
    figure7,
    table1,
    table2,
    table3,
)

__all__ = [
    "ExperimentError",
    "OccupancyReport",
    "occupancy_report",
    "RegressionResult",
    "RunResult",
    "TableResult",
    "WorkloadExperiment",
    "figure7",
    "form_many_parallel",
    "Fleet",
    "FleetConfig",
    "form_many_fleet",
    "form_module_parallel",
    "format_report",
    "run_bench",
    "run_fault_drill",
    "run_fleet_corpus",
    "run_fleet_drill",
    "run_selfcheck",
    "write_json",
    "heuristic_config",
    "ordering_config",
    "table1",
    "table2",
    "table3",
]
