"""Experiment harness regenerating the paper's tables and figures."""

from repro.harness.experiment import (
    ExperimentError,
    RunResult,
    WorkloadExperiment,
    heuristic_config,
    ordering_config,
)
from repro.harness.occupancy import OccupancyReport, occupancy_report
from repro.harness.tables import (
    RegressionResult,
    TableResult,
    figure7,
    table1,
    table2,
    table3,
)

__all__ = [
    "ExperimentError",
    "OccupancyReport",
    "occupancy_report",
    "RegressionResult",
    "RunResult",
    "TableResult",
    "WorkloadExperiment",
    "figure7",
    "heuristic_config",
    "ordering_config",
    "table1",
    "table2",
    "table3",
]
