"""The ``replay`` CLI verb: check-mode replay and decision bisection.

Two modes over the flight-recorder logs the ledger stores next to run
records (:mod:`repro.obs.replay`):

- **check mode** — ``replay <workload> [--fn NAME] [--run REF]`` re-runs
  formation with a :class:`~repro.obs.replay.ReplayChecker` attached to
  the live tracer, validating every offer/accept/reject against the
  recorded stream and halting at the first divergence with a full
  context dump (record and offer index, both sides' estimates, the
  constraint-attribution diff, and the last accepted merge).  Exit 2 on
  divergence, so CI can gate on it;
- **bisect mode** — ``replay --bisect <runA> <runB>`` loads two logs
  (ledger run references, decision-log digests, or JSON file paths) and
  reports the first diverging decision per function — turning
  "fingerprints differ" into "offer #47 on pair (bb3,bb7): A accepted,
  B rejected CONSTRAINT_INSTRUCTIONS".  Exit 2 when any divergence is
  found, 0 when the runs are decision-identical.

Replay re-forms with the exact configuration ``record`` used (driver
defaults, ``record_events=False``), so a clean check also cross-checks
``MergeStats.decision_fingerprint()`` against the fingerprint the log
embedded at record time.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.core.convergent import form_module
from repro.obs.ledger import Ledger, LedgerError
from repro.obs.replay import (
    ReplayChecker,
    ReplayDivergence,
    ReplayError,
    first_divergence,
    validate_log_set,
)
from repro.obs.sink import MemorySink
from repro.obs.trace import Tracer, tracing
from repro.profiles import collect_profile
from repro.workloads.spec import SPEC_BENCHMARKS, SPEC_ORDER


def resolve_log_functions(ref: str, ledger: Ledger) -> tuple[dict, str]:
    """Resolve a reference to a decision log; returns ``(functions, label)``.

    Accepts, in order of preference:

    - a JSON file path — either a decision-log set or a run record whose
      ``decision_log`` digest resolves in the ledger;
    - ``latest`` or a run-hash prefix — the referenced record's log;
    - a decision-log digest prefix (when no run matches).
    """
    if os.path.exists(ref):
        try:
            with open(ref) as handle:
                doc = json.load(handle)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read {ref!r}: {exc}")
        if isinstance(doc, dict) and doc.get("kind") == "decision_log":
            try:
                validate_log_set(doc)
            except ReplayError as exc:
                raise SystemExit(f"invalid decision log {ref!r}: {exc}")
            return doc["functions"], ref
        digest = doc.get("decision_log") if isinstance(doc, dict) else None
        if not digest:
            raise SystemExit(
                f"{ref!r} is neither a decision log nor a run record "
                "with a 'decision_log' digest (re-record with this "
                "version to capture one)"
            )
        try:
            return ledger.load_decisions(digest)["functions"], ref
        except (LedgerError, ReplayError) as exc:
            raise SystemExit(str(exc))
    # Ledger references: run first (the common case), then the decision
    # store directly, so raw log digests work too.
    try:
        record = ledger.load(ref)
    except LedgerError as run_error:
        try:
            log_set = ledger.load_decisions(ref)
        except (LedgerError, ReplayError):
            raise SystemExit(str(run_error))
        return log_set["functions"], f"decisions:{ref}"
    digest = record.get("decision_log")
    if not digest:
        raise SystemExit(
            f"ledger run {ref!r} predates the flight recorder (no "
            "'decision_log' field); re-record to capture one"
        )
    try:
        return ledger.load_decisions(digest)["functions"], ref
    except (LedgerError, ReplayError) as exc:
        raise SystemExit(str(exc))


# ---------------------------------------------------------------------------
# Check mode
# ---------------------------------------------------------------------------


def run_replay_check(
    workload_name: str,
    fn: Optional[str] = None,
    run: str = "latest",
    ledger_dir: Optional[str] = None,
) -> str:
    """Re-run one workload's formation against a recorded decision log.

    Raises ``SystemExit(2)`` at the first divergence, with the dump on
    stdout.  On success returns a short confirmation including the
    ``MergeStats.decision_fingerprint()`` cross-check.
    """
    if workload_name not in SPEC_BENCHMARKS:
        raise SystemExit(
            f"unknown workload {workload_name!r}; "
            f"available: {', '.join(SPEC_ORDER)}"
        )
    ledger = Ledger(ledger_dir) if ledger_dir else Ledger()
    functions, label = resolve_log_functions(run, ledger)
    prefix = f"{workload_name}:"
    in_scope = {key for key in functions if key.startswith(prefix)}
    if fn is not None:
        wanted = f"{prefix}{fn}"
        if wanted not in in_scope:
            raise SystemExit(
                f"no recorded log for {wanted!r} in {label}; recorded "
                "functions: " + (", ".join(sorted(in_scope)) or "<none>")
            )
        only = {wanted}
    else:
        if not in_scope:
            raise SystemExit(
                f"run {label} has no recorded decisions for workload "
                f"{workload_name!r} (recorded workloads: "
                + ", ".join(sorted({k.split(':', 1)[0] for k in functions}))
                + ")"
            )
        only = in_scope

    workload = SPEC_BENCHMARKS[workload_name]
    module = workload.module()
    profile = collect_profile(
        module, args=workload.args, preload=workload.preload
    )
    checker = ReplayChecker(functions, prefix=prefix, only=only)
    tracer = Tracer(sinks=(MemorySink(), checker))
    try:
        with tracing(tracer):
            # Mirror the `record` verb's configuration exactly: driver
            # defaults, compatibility event view off.
            report = form_module(module, profile=profile,
                                 record_events=False)
    except ReplayDivergence as divergence:
        print(format_divergence_dump(divergence, label))
        raise SystemExit(2)
    try:
        checker.finalize()
    except ReplayDivergence as divergence:
        print(format_divergence_dump(divergence, label))
        raise SystemExit(2)

    mismatched = []
    for key in sorted(only):
        recorded = functions[key].get("stats_fingerprint")
        func_name = key[len(prefix):]
        freport = report.functions.get(func_name)
        if recorded and freport is not None:
            live = freport.stats.decision_fingerprint()
            if live != recorded:
                mismatched.append((key, recorded, live))
    if mismatched:
        lines = [
            "replay: decision stream matched but MergeStats "
            "fingerprints drifted (engine counters out of sync with "
            "the decision log — this is a bug, not workload drift):"
        ]
        for key, recorded, live in mismatched:
            lines.append(f"  {key}: recorded {recorded} live {live}")
        print("\n".join(lines))
        raise SystemExit(2)

    return (
        f"replay ok: {workload_name} matched {label} — "
        f"{checker.checked} decision(s) across {len(only)} function(s), "
        "stats fingerprints verified"
    )


def format_divergence_dump(
    divergence: ReplayDivergence, label: str
) -> str:
    lines = [
        f"REPLAY DIVERGENCE against {label}",
        divergence.describe(),
        "",
        "The live run stops at the diverging decision; everything "
        "before it matched the recording.",
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Bisect mode
# ---------------------------------------------------------------------------


def run_replay_bisect(
    ref_a: str,
    ref_b: str,
    ledger_dir: Optional[str] = None,
) -> str:
    """First-divergence bisection between two recorded runs.

    Returns the zero-divergence summary, or prints the per-function
    first divergences and raises ``SystemExit(2)``.
    """
    ledger = Ledger(ledger_dir) if ledger_dir else Ledger()
    functions_a, label_a = resolve_log_functions(ref_a, ledger)
    functions_b, label_b = resolve_log_functions(ref_b, ledger)
    divergences = first_divergence(functions_a, functions_b)
    if not divergences:
        total = sum(
            len(bucket.get("records", ())) for bucket in functions_a.values()
        )
        return (
            f"bisect: zero divergences — {len(functions_a)} function(s), "
            f"{total} decision record(s) identical between "
            f"{label_a} and {label_b}"
        )
    lines = [
        f"bisect: {len(divergences)} diverging function(s) between "
        f"A={label_a} and B={label_b}; first divergence of each:",
        "",
    ]
    for divergence in divergences:
        lines.append(divergence.describe("A", "B"))
        lines.append("")
    compared = len(set(functions_a) | set(functions_b))
    lines.append(
        f"functions compared: {compared}, diverging: {len(divergences)}, "
        f"identical: {compared - len(divergences)}"
    )
    print("\n".join(lines))
    raise SystemExit(2)
