"""The ``record`` and ``compare`` CLI verbs: persist runs, diff runs.

``record`` forms a workload suite under the decision tracer and persists
a schema-versioned run record (per-function decision fingerprints with
constraint attribution, merge counters, block composition, phase
self-times, telemetry snapshot, machine/commit metadata) into the
append-only content-addressed ledger (``.repro-ledger/`` by default).
``bench --record``, ``trace --record`` and ``selfcheck --record`` reuse
the same path, so every harness entry point can leave a durable record.

``compare`` diffs two records — ledger references (``latest`` or a hash
prefix) or plain JSON file paths, so CI can gate against a committed
baseline under ``benchmarks/baselines/`` — and exits nonzero on decision
drift, or on a phase-time regression beyond the noise threshold when
both records came from the same machine.  ``--html`` additionally writes
a static self-contained report; ``--history`` renders the
``BENCH_formation.json`` trajectory.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.core.convergent import form_module
from repro.ir import arena as _arena
from repro.obs.ledger import (
    RECORD_SCHEMA_VERSION,
    Ledger,
    LedgerError,
    commit_metadata,
    decision_fingerprints,
    fingerprint_of,
    machine_metadata,
    utc_timestamp,
    validate_record,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.replay import attach_stats, build_log_set, log_from_trace
from repro.obs.rundiff import (
    diff_runs,
    format_diff,
    load_history,
    write_html_report,
)
from repro.obs.sink import MemorySink
from repro.obs.trace import Tracer, tracing
from repro.harness.bench import QUICK_SUBSET, prepare_workloads
from repro.harness.tracecmd import phase_table, rejection_breakdown

#: Keys of a bench result worth embedding in a run record (timings and
#: counters, not the nested history/telemetry blobs the record already
#: carries in richer form).
_BENCH_KEYS = (
    "sequential_fast_s",
    "sequential_legacy_s",
    "speedup_fast_vs_legacy",
    "guarded_s",
    "parallel_s",
    "merges",
    "mtup",
    "quick",
    "repeat",
)


def _composition(func) -> dict:
    """Block-composition stats of a formed function."""
    sizes = [len(block) for block in func.blocks.values()]
    return {
        "blocks": len(sizes),
        "instrs": sum(sizes),
        "max_block": max(sizes, default=0),
    }


def build_suite_record(
    subset: Optional[list[str]] = None,
    kind: str = "suite",
    label: Optional[str] = None,
    bench_result: Optional[dict] = None,
    decision_logs: Optional[dict] = None,
) -> dict:
    """Form ``subset`` (default: the full SPEC suite) under a tracer and
    assemble a run record.

    Formation runs with driver defaults (fast path, failsafe) — the same
    configuration ``form_module`` callers get — so the recorded decisions
    are the decisions the system actually makes.  The traced pass is
    *untimed*: records are about decisions; wall-time comparisons come
    from the phase self-times the trace itself carries.

    ``decision_logs`` (optional out-param dict) is filled with the
    per-function flight-recorder logs projected from the same traces —
    no extra formation pass — with the engine's ``MergeStats`` counters
    and ``decision_fingerprint()`` embedded for cross-checking.
    """
    prepared = prepare_workloads(subset)
    functions: dict[str, dict] = {}
    phase_totals: dict[str, float] = {}
    event_counts: dict[str, int] = {}
    rejections: dict[str, int] = {}
    driver_counters: dict[str, int] = {}
    total_events = 0
    merges = 0
    attempts = 0
    mtup = [0, 0, 0, 0]
    for name, workload, profile in prepared:
        module = workload.module()
        registry = MetricsRegistry()
        tracer = Tracer(sinks=(MemorySink(),), metrics=registry)
        with tracing(tracer):
            report = form_module(
                module, profile=profile, record_events=False
            )
        trace = tracer.finish()
        _arena.STORE.publish_metrics(registry)
        fingerprints = decision_fingerprints(trace, prefix=f"{name}:")
        log_stats: dict[str, dict] = {}
        for func in module:
            key = f"{name}:{func.name}"
            freport = report.functions[func.name]
            bucket = fingerprints.get(
                key, {"decisions": [], "fingerprint": _EMPTY_FINGERPRINT}
            )
            entry = {
                "fingerprint": bucket["fingerprint"],
                "decisions": bucket["decisions"],
                "merges": freport.stats.merges,
                "mtup": list(freport.stats.mtup),
                "attempts": freport.stats.attempts,
                "status": freport.status.value,
                "stats_fingerprint": freport.stats.decision_fingerprint(),
            }
            entry.update(_composition(func))
            functions[key] = entry
            log_stats[key] = _log_stats_entry(freport)
        if decision_logs is not None:
            decision_logs.update(
                attach_stats(
                    log_from_trace(trace, prefix=f"{name}:"), log_stats
                )
            )
        merges += report.stats.merges
        attempts += report.stats.attempts
        mtup = [a + b for a, b in zip(mtup, report.stats.mtup)]
        for row in phase_table(trace).values():
            for phase, dur in row.items():
                phase_totals[phase] = phase_totals.get(phase, 0.0) + dur
        for event_name, count in trace.event_counts().items():
            event_counts[event_name] = event_counts.get(event_name, 0) + count
        for reason, count in rejection_breakdown(trace).items():
            rejections[reason] = rejections.get(reason, 0) + count
        # Driver recovery counters (``formation_task_retries_total``,
        # ``fleet_respawns_total``, ...) land in the same registry as the
        # phase histogram; fold any nonzero ones into the record so a
        # ledger diff can see recovery activity, not just decisions.
        for metric_name, entries in registry.snapshot().items():
            if not metric_name.endswith("_total"):
                continue
            for entry in entries:
                if entry.get("value"):
                    driver_counters[metric_name] = (
                        driver_counters.get(metric_name, 0) + entry["value"]
                    )
        total_events += len(trace)

    total_phase = sum(phase_totals.values())
    record = {
        "schema_version": RECORD_SCHEMA_VERSION,
        "kind": kind,
        "label": label,
        "timestamp": utc_timestamp(),
        "machine": machine_metadata(),
        "commit": commit_metadata(),
        "workloads": [name for name, _, _ in prepared],
        "merges": merges,
        "mtup": mtup,
        "attempts": attempts,
        "functions": functions,
        "phase_time_s": {
            phase: round(phase_totals[phase], 6)
            for phase in sorted(phase_totals)
        },
        "phase_shares": {
            phase: round(phase_totals[phase] / total_phase, 4)
            if total_phase
            else 0.0
            for phase in sorted(phase_totals)
        },
        "telemetry": {
            "events": total_events,
            "event_counts": event_counts,
            "rejections": rejections,
            "driver_counters": driver_counters,
        },
        "arena": {"backend": _arena.backend(), **_arena.STORE.counters()},
    }
    if bench_result is not None:
        record["bench"] = {
            key: bench_result[key]
            for key in _BENCH_KEYS
            if key in bench_result
        }
    return record


#: Fingerprint of a function that saw no accept/reject decisions at all
#: (e.g. a single-block function with nothing to offer).
_EMPTY_FINGERPRINT = fingerprint_of(())


def _log_stats_entry(freport) -> dict:
    """Engine-side counters embedded in a function's decision log.

    ``merges``/``mtup`` are only embedded for clean formations: a
    failed-safe function was rolled back, so its counters describe the
    aborted attempt while its events may have been truncated — the
    validator's accepts==merges cross-check would be comparing different
    things.  The stats fingerprint and attempt count always ride along.
    """
    stats = {
        "attempts": freport.stats.attempts,
        "stats_fingerprint": freport.stats.decision_fingerprint(),
        "status": freport.status.value,
    }
    if freport.status.value == "ok":
        stats["merges"] = freport.stats.merges
        stats["mtup"] = list(freport.stats.mtup)
    return stats


def record_suite_run(
    subset: Optional[list[str]] = None,
    kind: str = "suite",
    label: Optional[str] = None,
    bench_result: Optional[dict] = None,
    ledger_dir: str = None,
    out: Optional[str] = None,
) -> tuple[dict, str]:
    """Build a record, persist it, and return ``(record, run_hash)``.

    ``ledger_dir=None`` uses the default ledger; ``out`` additionally
    writes the record JSON to a standalone file (the form CI commits as
    a baseline under ``benchmarks/baselines/``).
    """
    decision_logs: dict = {}
    record = build_suite_record(
        subset=subset, kind=kind, label=label, bench_result=bench_result,
        decision_logs=decision_logs,
    )
    ledger = Ledger(ledger_dir) if ledger_dir else Ledger()
    # The flight-recorder log is persisted first so the run record can
    # reference it by digest; the digest is deterministic (the log holds
    # no timestamps or machine metadata), so identical runs — including
    # cross-backend bit-identical ones — still dedupe in both stores.
    record["decision_log"] = ledger.record_decisions(
        build_log_set(decision_logs)
    )
    digest = ledger.record(record)
    if out:
        with open(out, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return record, digest


def summarize_record(record: dict, digest: str) -> str:
    drifty = [
        name
        for name, entry in record["functions"].items()
        if entry["status"] != "ok"
    ]
    lines = [
        f"recorded run {digest[:12]} ({record['kind']}"
        + (f", label={record['label']}" if record.get("label") else "")
        + ")",
        f"  workloads: {len(record['workloads'])}, "
        f"functions: {len(record['functions'])}, "
        f"merges: {record['merges']} "
        f"(m/t/u/p = {'/'.join(str(n) for n in record['mtup'])})",
        f"  decisions: "
        + ", ".join(
            f"{name}={count}"
            for name, count in sorted(
                record["telemetry"]["event_counts"].items()
            )
            if name in ("accept", "reject", "offer")
        ),
    ]
    if record.get("decision_log"):
        lines.append(
            f"  decision log: {record['decision_log'][:12]} "
            "(replay/bisect with `replay --run`)"
        )
    if drifty:
        lines.append(
            "  non-ok functions: "
            + ", ".join(f"{n} ({record['functions'][n]['status']})"
                        for n in drifty)
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI runners
# ---------------------------------------------------------------------------


def resolve_record(ref: str, ledger: Ledger) -> dict:
    """A run reference: an existing JSON file path, ``latest``, or a
    (possibly abbreviated) ledger run hash."""
    if os.path.exists(ref):
        try:
            with open(ref) as handle:
                record = json.load(handle)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read run record {ref!r}: {exc}")
        try:
            validate_record(record)
        except LedgerError as exc:
            raise SystemExit(f"invalid run record {ref!r}: {exc}")
        return record
    try:
        return ledger.load(ref)
    except LedgerError as exc:
        raise SystemExit(str(exc))


def run_record(
    subset: Optional[list[str]] = None,
    quick: bool = False,
    label: Optional[str] = None,
    ledger_dir: Optional[str] = None,
    out: Optional[str] = None,
    kind: str = "suite",
    bench_result: Optional[dict] = None,
) -> str:
    """The ``record`` verb (and the ``--record`` flag's implementation)."""
    if quick and subset is None:
        subset = list(QUICK_SUBSET)
    record, digest = record_suite_run(
        subset=subset,
        kind=kind,
        label=label,
        bench_result=bench_result,
        ledger_dir=ledger_dir,
        out=out,
    )
    report = summarize_record(record, digest)
    if out:
        report += f"\n  record written to {out}"
    return report


def _format_history(history: list[dict]) -> str:
    if not history:
        return "bench history: empty (run `bench` to append a data point)"
    lines = [
        f"bench history: {len(history)} run(s)",
        f"  {'timestamp':<26} {'fast_s':>8} {'legacy_s':>9} "
        f"{'merges':>6} {'quick':>5}",
    ]
    for entry in history:
        legacy = entry.get("sequential_legacy_s")
        lines.append(
            f"  {str(entry.get('timestamp')):<26} "
            f"{entry.get('sequential_fast_s', float('nan')):>8.4f} "
            f"{legacy if legacy is None else format(legacy, '>9.4f')} "
            f"{entry.get('merges', '?'):>6} "
            f"{'yes' if entry.get('quick') else 'no':>5}"
        )
    return "\n".join(lines)


def run_compare(
    run_a: Optional[str] = None,
    run_b: Optional[str] = None,
    against_ledger: Optional[str] = None,
    ledger_dir: Optional[str] = None,
    html: Optional[str] = None,
    threshold: float = 0.15,
    history: bool = False,
    bench_json: str = "BENCH_formation.json",
) -> str:
    """The ``compare`` verb.  Raises ``SystemExit`` (nonzero) on drift or
    on a same-machine phase-time regression beyond ``threshold``."""
    ledger = Ledger(ledger_dir) if ledger_dir else Ledger()
    trajectory = load_history(bench_json) if history else None

    if against_ledger is not None:
        if run_a is None:
            raise SystemExit(
                "compare --against-ledger needs one run to compare "
                "(e.g. `compare run.json --against-ledger latest`)"
            )
        if run_b is not None:
            raise SystemExit(
                "compare: give either two runs or one run plus "
                "--against-ledger, not both"
            )
        record_a = resolve_record(against_ledger, ledger)
        record_b = resolve_record(run_a, ledger)
    elif run_a is not None and run_b is not None:
        record_a = resolve_record(run_a, ledger)
        record_b = resolve_record(run_b, ledger)
    elif history:
        # `compare --history` alone: just render the bench trajectory.
        return _format_history(trajectory or [])
    else:
        raise SystemExit(
            "compare needs two runs (`compare <run-a> <run-b>`), one run "
            "plus --against-ledger, or --history"
        )

    diff = diff_runs(record_a, record_b, time_threshold=threshold)
    report = format_diff(diff)
    if history:
        report += "\n\n" + _format_history(trajectory or [])
    if html:
        write_html_report(diff, html, history=trajectory)
        report += f"\nhtml report written to {html}"
    if diff["has_drift"] or diff["has_time_regression"]:
        print(report)
        raise SystemExit(2)
    return report
