"""Command-line interface: regenerate any table or figure of the paper.

Usage::

    python -m repro.harness table1 [--subset ammp_1,sieve] [--out FILE]
    python -m repro.harness table2
    python -m repro.harness table3
    python -m repro.harness figure7
    python -m repro.harness all --out results.txt
    python -m repro.harness bench [--quick] [--json BENCH_formation.json]
    python -m repro.harness selfcheck [--subset sieve,mcf]
    python -m repro.harness table1 --selfcheck
    python -m repro.harness bench --faults [--fault-rate 0.1] [--fault-seed 0]
    python -m repro.harness trace mcf [--why b0,b3] [--jsonl t.jsonl] \
        [--chrome t.json] [--dot prefix_]
    python -m repro.harness stats mcf [--top 10]
    python -m repro.harness record [--quick] [--label ci] [--out rec.json]
    python -m repro.harness bench --record
    python -m repro.harness compare <run-a> <run-b> [--html report.html]
    python -m repro.harness compare rec.json --against-ledger latest
    python -m repro.harness backends
    python -m repro.harness fleet [--workers 4] [--corpus 10x] \
        [--modules 12] [--journal j.jsonl] [--resume] [--max-jobs N] \
        [--verify-serial] [--record]
    python -m repro.harness fleet --drill [--fault-rate 0.1] [--fault-seed 2]
    python -m repro.harness fleet --corpus 50x --expose 9100
    python -m repro.harness top [--port 9100] [--interval 1] [--once]
    python -m repro.harness bench --quick --sample-profile [--sample-hz 100]
    python -m repro.harness bench --quick --gate-trend
    python -m repro.harness replay mcf [--fn main] [--run latest]
    python -m repro.harness replay --bisect <runA> <runB>
    python -m repro.harness bench --quick --mem-profile [--mem-ceiling MB]

``selfcheck`` (or the ``--selfcheck`` flag on any target) runs the
differential-simulation oracle over the suite before the experiment and
fails the run on any divergence; ``bench --faults`` runs the seeded
fault-containment drill instead of the timing benchmark.  ``trace`` and
``stats`` record one workload's formation under the decision tracer
(:mod:`repro.obs`) and render the record / its aggregates.

``record`` persists a run record (per-function decision fingerprints,
merge counts, phase times) into the ``.repro-ledger/`` directory — also
reachable as ``--record`` on ``bench``/``selfcheck``/``trace``; and
``compare`` diffs two records (files, ledger hashes, or ``latest``),
exiting nonzero on decision drift or a same-machine phase-time
regression beyond ``--threshold``.

``fleet`` runs a corpus on the persistent self-healing worker fleet
(:mod:`repro.harness.fleet`): journalled, resumable (``--journal`` /
``--resume``), verifiable bit-identical to serial (``--verify-serial``).
``fleet --drill`` instead runs the kill/stall/raise containment drill.

``replay`` validates a live formation run against the flight-recorder
decision log a ``record`` run left in the ledger, halting at the first
divergence; ``replay --bisect`` pinpoints the first diverging decision
between two recorded runs (:mod:`repro.harness.replaycmd`).  ``bench
--mem-profile`` attributes allocations to formation phases over an extra
untimed pass (:mod:`repro.obs.memprof`).

``--expose PORT`` (fleet/bench/selfcheck) serves ``/metrics`` (Prometheus
text), ``/healthz`` and ``/snapshot.json`` for the duration of the run;
``top`` renders a live per-worker terminal view by polling that endpoint
from another terminal.  ``bench --sample-profile`` runs the stdlib
sampling profiler over an extra untimed pass; ``bench --gate-trend``
robust-z scores the run against the bench JSON's own history and fails
on slow-direction trajectory outliers (:mod:`repro.obs.anomaly`).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

from repro.harness.tables import figure7, table1, table2, table3


def _parse_subset(text: Optional[str]) -> Optional[list[str]]:
    if not text:
        return None
    return [name.strip() for name in text.split(",") if name.strip()]


def run(argv: Optional[list[str]] = None) -> str:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description="Regenerate the tables and figures of 'Merging Head "
        "and Tail Duplication for Convergent Hyperblock Formation' "
        "(MICRO 2006).",
    )
    parser.add_argument(
        "target",
        choices=[
            "table1", "table2", "table3", "figure7", "all", "bench",
            "selfcheck", "trace", "stats", "record", "compare",
            "backends", "fleet", "top", "replay",
        ],
        help="which experiment to regenerate ('bench' times formation, "
        "'selfcheck' runs the differential-simulation oracle, 'trace'/"
        "'stats' record one workload under the decision tracer, "
        "'record' persists a run record to the ledger, 'compare' diffs "
        "two run records, 'backends' lists the IR analysis backends, "
        "'fleet' runs a corpus on the self-healing worker fleet, 'top' "
        "renders a live view of a run started with --expose, 'replay' "
        "check-replays a workload against a recorded decision log or "
        "bisects two recorded runs to the first diverging decision)",
    )
    parser.add_argument(
        "workload", nargs="?",
        help="trace/stats/replay: the SPEC workload to form under the "
        "tracer; compare / replay --bisect: the baseline run (file path, "
        "ledger hash, or 'latest')",
    )
    parser.add_argument(
        "other", nargs="?",
        help="compare / replay --bisect: the candidate run (file path, "
        "ledger hash, or 'latest')",
    )
    parser.add_argument(
        "--subset",
        help="comma-separated benchmark names (default: the full suite)",
    )
    parser.add_argument("--out", help="also write the report to this file")
    parser.add_argument(
        "--quick", action="store_true",
        help="bench: small workload subset for CI smoke runs",
    )
    parser.add_argument(
        "--json", nargs="?", const="-", default=None,
        help="bench: where to write the JSON result (default "
        "BENCH_formation.json); stats / trace --why: emit machine-"
        "readable JSON instead of the rendered tables (bare --json "
        "prints to stdout, or give a path)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="bench: process-pool size for the parallel configuration",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="bench: timing repetitions (best-of)",
    )
    parser.add_argument(
        "--no-parallel", action="store_true",
        help="bench: skip the process-pool configuration",
    )
    parser.add_argument(
        "--scale", action="store_true",
        help="bench: also time the synthetic scaling tiers (10x/50x/200x "
        "SPEC-sized functions; with --quick only the smallest tier)",
    )
    parser.add_argument(
        "--ceiling", type=float, default=None,
        help="bench: fail (exit 1) if sequential fast time exceeds this "
        "many seconds",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="bench: cProfile one sequential formation pass and report "
        "the top-20 functions by cumulative time",
    )
    parser.add_argument(
        "--backend-smoke", action="store_true", dest="backend_smoke",
        help="bench: race every accelerated IR backend (arena, and numpy "
        "when installed) against the legacy object walkers on one scaling "
        "tier and fail if any is slower",
    )
    parser.add_argument(
        "--smoke-tier", default="50x", dest="smoke_tier",
        help="bench --backend-smoke: scaling tier to time (10x/50x/200x)",
    )
    parser.add_argument(
        "--selfcheck", action="store_true",
        help="run the differential-simulation oracle over the subset "
        "before the experiment; exit 1 on any divergence",
    )
    parser.add_argument(
        "--faults", action="store_true",
        help="bench: run the fault-containment drill instead of timing",
    )
    parser.add_argument(
        "--fault-rate", type=float, default=0.1,
        help="bench --faults: per-trial fault probability",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=None,
        help="bench --faults / fleet --drill: fault-plane seed "
        "(default: 0 for bench, 2 for the fleet drill)",
    )
    parser.add_argument(
        "--driver", choices=["pool", "fleet", "serial"], default="pool",
        help="bench/selfcheck: parallel-driver engine to race against "
        "the sequential reference",
    )
    parser.add_argument(
        "--drill", action="store_true",
        help="fleet: run the kill/stall/raise containment drill instead "
        "of a plain corpus run",
    )
    parser.add_argument(
        "--corpus", default="10x",
        help="fleet: corpus specifier — a scaling tier (10x/50x/200x) "
        "or 'spec' (the 19 SPEC workloads)",
    )
    parser.add_argument(
        "--modules", type=int, default=12,
        help="fleet: how many synthetic modules a scaling-tier corpus "
        "holds (ignored for --corpus spec)",
    )
    parser.add_argument(
        "--corpus-seed", type=int, default=None, dest="corpus_seed",
        help="fleet: base seed of the synthetic corpus (default: the "
        "bench scaling seed)",
    )
    parser.add_argument(
        "--journal", default=None,
        help="fleet: append-only run journal path; completed jobs are "
        "journalled so a killed driver can --resume",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="fleet: skip jobs already completed in --journal (refuses "
        "if the journal's corpus configuration differs)",
    )
    parser.add_argument(
        "--max-jobs", type=int, default=None, dest="max_jobs",
        help="fleet: abandon the run after this many completions (the "
        "CI resume smoke's stand-in for a killed driver)",
    )
    parser.add_argument(
        "--verify-serial", action="store_true", dest="verify_serial",
        help="fleet: re-form the corpus in-process and fail on any "
        "decision-fingerprint divergence",
    )
    parser.add_argument(
        "--why",
        help="trace: explain one decision — 'HB,TARGET' block names",
    )
    parser.add_argument(
        "--jsonl", help="trace: also write raw events to this JSONL file"
    )
    parser.add_argument(
        "--chrome",
        help="trace: also write a Chrome/Perfetto trace to this file",
    )
    parser.add_argument(
        "--top", type=int, default=10,
        help="stats: how many slowest trials to list",
    )
    parser.add_argument(
        "--dot",
        help="trace: write per-function DOT files (provenance-striped "
        "hyperblocks) with this filename prefix",
    )
    parser.add_argument(
        "--record", action="store_true",
        help="bench/selfcheck/trace: also persist a run record to the "
        "ledger",
    )
    parser.add_argument(
        "--ledger", default=None,
        help="ledger directory (default: .repro-ledger)",
    )
    parser.add_argument(
        "--label", help="record: free-form label stored with the run",
    )
    parser.add_argument(
        "--against-ledger", dest="against_ledger", metavar="REF",
        help="compare: baseline from the ledger ('latest' or a hash "
        "prefix) instead of a second positional run",
    )
    parser.add_argument(
        "--html", help="compare: also write a self-contained HTML report",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.15,
        help="compare: relative phase-time change below which a delta "
        "is noise (default 0.15)",
    )
    parser.add_argument(
        "--history", action="store_true",
        help="compare: also render the BENCH_formation.json trajectory",
    )
    parser.add_argument(
        "--bench-json", default="BENCH_formation.json",
        help="compare --history: which bench JSON to read the "
        "trajectory from",
    )
    parser.add_argument(
        "--expose", type=int, metavar="PORT", default=None,
        help="fleet/bench/selfcheck: serve /metrics (Prometheus text), "
        "/healthz and /snapshot.json on this port for the duration of "
        "the run (0 = ephemeral; the bound port is printed to stderr)",
    )
    parser.add_argument(
        "--sample-profile", action="store_true", dest="sample_profile",
        help="bench: run the zero-dependency sampling profiler over an "
        "extra untimed pass; reports phase shares and hottest frames, "
        "and writes collapsed-stack + speedscope exports",
    )
    parser.add_argument(
        "--sample-hz", type=float, default=None, dest="sample_hz",
        help="bench --sample-profile: sampling frequency (default 100)",
    )
    parser.add_argument(
        "--sample-out", default=None, dest="sample_out",
        help="bench --sample-profile: path prefix for the exports "
        "(default: derived from --json)",
    )
    parser.add_argument(
        "--gate-trend", action="store_true", dest="gate_trend",
        help="bench: after writing --json, robust-z score this run "
        "against the file's own history and exit 1 if it is a "
        "slow-direction trajectory outlier",
    )
    parser.add_argument(
        "--fn", default=None,
        help="replay: restrict check-mode replay to this function",
    )
    parser.add_argument(
        "--run", default="latest",
        help="replay: which recorded run to check against — a ledger "
        "run ('latest' or a hash prefix), a decision-log digest, or a "
        "JSON file path (default: latest)",
    )
    parser.add_argument(
        "--bisect", action="store_true",
        help="replay: compare the two positional run references and "
        "report the first diverging decision per function (exit 2 on "
        "any divergence)",
    )
    parser.add_argument(
        "--mem-profile", action="store_true", dest="mem_profile",
        help="bench: attribute allocations (tracemalloc) to formation "
        "phases over an extra untimed pass, plus arena/mirror byte "
        "accounting; results land in the bench JSON and the "
        "formation_phase_alloc_bytes histogram",
    )
    parser.add_argument(
        "--mem-ceiling", type=float, default=None, dest="mem_ceiling",
        metavar="MB",
        help="bench --mem-profile: fail (exit 1) if the process peak "
        "RSS exceeds this many MiB",
    )
    parser.add_argument(
        "--url", default=None,
        help="top: metrics endpoint base URL "
        "(default http://127.0.0.1:<--port>)",
    )
    parser.add_argument(
        "--port", type=int, default=9100,
        help="top: port of the exposed endpoint on localhost",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0,
        help="top: seconds between redraws",
    )
    parser.add_argument(
        "--frames", type=int, default=None,
        help="top: stop after this many redraws (default: run until "
        "ctrl-c or the endpoint goes away)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="top: print a single plain frame (no ANSI redraw) and exit",
    )
    args = parser.parse_args(argv)

    # `--json` is shared: a result path for bench (with its historical
    # default), a render-as-JSON switch for stats / trace --why.
    if args.target == "bench" and args.json in (None, "-"):
        args.json = "BENCH_formation.json"

    subset = _parse_subset(args.subset)

    if args.target == "top":
        from repro.harness.topcmd import run_top

        url = args.url or f"http://127.0.0.1:{args.port}"
        code = run_top(
            url, interval=args.interval, frames=args.frames, once=args.once
        )
        if code:
            raise SystemExit(code)
        return ""

    # --expose: run-scoped observability.  The registry is created here
    # and handed to the verb; the endpoint lives exactly as long as the
    # run (daemon thread, closed in the finally).
    args.metrics = None
    server = None
    if args.expose is not None:
        if args.target not in ("fleet", "bench", "selfcheck"):
            raise SystemExit(
                "--expose only applies to the fleet, bench and selfcheck "
                "verbs"
            )
        from repro.ir import arena as _arena
        from repro.obs.expo import expose_registry, publish_build_info
        from repro.obs.ledger import RECORD_SCHEMA_VERSION
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.replay import DECISION_LOG_SCHEMA_VERSION

        args.metrics = MetricsRegistry()
        # Build-info gauge: lets a scrape correlate every series with
        # the backend/schema/interpreter that produced it.
        publish_build_info(
            args.metrics,
            ir_backend=_arena.backend(),
            record_schema=str(RECORD_SCHEMA_VERSION),
            decision_log_schema=str(DECISION_LOG_SCHEMA_VERSION),
            python=sys.version.split()[0],
        )
        server = expose_registry(args.metrics, args.expose)
        print(
            f"metrics exposed at {server.url}/metrics "
            f"(also /healthz, /snapshot.json; watch with: "
            f"python -m repro.harness top --port {server.port})",
            file=sys.stderr,
        )
    try:
        return _dispatch(args, subset)
    finally:
        if server is not None:
            server.close()


def _dispatch(args, subset: Optional[list[str]]) -> str:

    if args.target == "backends":
        from repro.ir import arena as _arena

        active = _arena.backend()
        lines = ["IR analysis backends"]
        notes = {
            "numpy": "vectorized kernels over the arena columns "
            "(pip install .[fast])",
            "arena": "struct-of-arrays columns, pure CPython consumers",
            "legacy": "object-graph walkers (the reference semantics)",
        }
        for name in _arena._BACKENDS:
            installed = name in _arena.available_backends()
            marker = "*" if name == active else " "
            status = notes[name] if installed else "NOT AVAILABLE (no numpy)"
            lines.append(f"  {marker} {name:<6} {status}")
        counters = _arena.STORE.counters()
        lines.append(
            f"  active: {active} (select with {_arena.BACKEND_ENV}); "
            f"{counters['column_bytes']} column bytes resident"
        )
        report = "\n".join(lines)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(report + "\n")
        return report

    if args.target == "fleet":
        report = _run_fleet_target(args)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(report + "\n")
        return report

    if args.target == "replay":
        from repro.harness.replaycmd import run_replay_bisect, run_replay_check

        if args.bisect:
            if not args.workload or not args.other:
                raise SystemExit(
                    "replay --bisect needs two run references "
                    "(e.g. `replay --bisect latest run_b.json`)"
                )
            report = run_replay_bisect(
                args.workload, args.other, ledger_dir=args.ledger
            )
        else:
            if not args.workload:
                raise SystemExit(
                    "replay needs a workload name (check mode) or "
                    "--bisect with two run references"
                )
            report = run_replay_check(
                args.workload, fn=args.fn, run=args.run,
                ledger_dir=args.ledger,
            )
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(report + "\n")
        return report

    if args.target == "record":
        from repro.harness.ledgercmd import run_record

        report = run_record(
            subset=subset, quick=args.quick, label=args.label,
            ledger_dir=args.ledger, out=args.out,
        )
        return report

    if args.target == "compare":
        from repro.harness.ledgercmd import run_compare

        return run_compare(
            run_a=args.workload, run_b=args.other,
            against_ledger=args.against_ledger, ledger_dir=args.ledger,
            html=args.html, threshold=args.threshold,
            history=args.history, bench_json=args.bench_json,
        )

    if args.target in ("trace", "stats"):
        from repro.harness.tracecmd import run_stats, run_trace

        if not args.workload:
            raise SystemExit(f"{args.target} needs a workload name")
        as_json = args.json is not None
        if args.target == "trace":
            report = run_trace(
                args.workload, why=args.why, jsonl=args.jsonl,
                chrome=args.chrome, dot=args.dot, as_json=as_json,
            )
            if args.record:
                from repro.harness.ledgercmd import run_record

                report += "\n" + run_record(
                    subset=[args.workload], kind="trace",
                    label=args.label, ledger_dir=args.ledger,
                )
        else:
            report = run_stats(args.workload, top=args.top, as_json=as_json)
        if as_json and args.json != "-":
            with open(args.json, "w") as handle:
                handle.write(report + "\n")
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(report + "\n")
        return report

    if args.target == "selfcheck" or args.selfcheck:
        from repro.harness.selfcheck import run_selfcheck

        # Table targets take *microbenchmark* subsets; the oracle runs
        # over SPEC workloads, so only forward SPEC-speaking subsets.
        check_subset = subset if args.target in ("selfcheck", "bench") else None
        check = run_selfcheck(
            subset=check_subset, driver=args.driver, metrics=args.metrics
        )
        if not check["ok"]:
            print(check["report"], file=sys.stderr)
            raise SystemExit("selfcheck failed: oracle divergence")
        if args.target == "selfcheck":
            report = check["report"]
            if args.record:
                from repro.harness.ledgercmd import run_record

                report += "\n" + run_record(
                    subset=check_subset, kind="selfcheck",
                    label=args.label, ledger_dir=args.ledger,
                )
            if args.out:
                with open(args.out, "w") as handle:
                    handle.write(report + "\n")
            return report

    if args.target == "bench" and args.faults:
        from repro.harness.selfcheck import run_fault_drill

        drill = run_fault_drill(
            subset=subset, rate=args.fault_rate,
            seed=args.fault_seed if args.fault_seed is not None else 0,
        )
        report = drill["report"]
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(report + "\n")
        if not drill["ok"]:
            print(report, file=sys.stderr)
            raise SystemExit("fault drill failed: a fault escaped containment")
        return report

    if args.target == "bench" and args.backend_smoke:
        import json as _json

        from repro.harness.bench import run_backend_smoke

        smoke = run_backend_smoke(tier=args.smoke_tier, repeat=args.repeat)
        report = _json.dumps(smoke, indent=2, sort_keys=True)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(report + "\n")
        return report

    if args.target == "bench":
        from repro.harness.bench import format_report, run_bench, write_json

        sample_out = args.sample_out
        if args.sample_profile and sample_out is None and args.json:
            sample_out = args.json.rsplit(".json", 1)[0] + ".profile"
        result = run_bench(
            subset=subset,
            quick=args.quick,
            workers=args.workers,
            repeat=args.repeat,
            parallel=not args.no_parallel,
            scale=args.scale,
            profile=args.profile,
            driver=args.driver,
            sample_profile=args.sample_profile,
            sample_hz=args.sample_hz,
            sample_out=sample_out,
            mem_profile=args.mem_profile,
            metrics=args.metrics,
        )
        if args.json:
            write_json(result, args.json)
        report = format_report(result)
        trend_ok = True
        if args.gate_trend:
            from repro.obs.anomaly import gate_trend

            if not args.json:
                raise SystemExit(
                    "--gate-trend needs --json: the history it scores "
                    "lives in the bench JSON"
                )
            trend_ok, trend_report = gate_trend(args.json)
            report += "\n" + trend_report
        if args.record:
            from repro.harness.ledgercmd import run_record

            # The record pass re-forms the suite under the tracer,
            # *outside* the timed windows — recording never perturbs the
            # numbers it records (priced in bench_obs_overhead.py).
            report += "\n" + run_record(
                subset=subset, quick=args.quick, kind="bench",
                label=args.label, ledger_dir=args.ledger,
                bench_result=result,
            )
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(report + "\n")
        if (
            args.ceiling is not None
            and result["sequential_fast_s"] > args.ceiling
        ):
            print(report, file=sys.stderr)
            raise SystemExit(
                f"bench ceiling exceeded: {result['sequential_fast_s']:.4f}s "
                f"> {args.ceiling:.4f}s"
            )
        if args.mem_ceiling is not None:
            if not args.mem_profile:
                raise SystemExit("--mem-ceiling needs --mem-profile")
            peak = result["mem_profile"]["peak_rss_bytes"]
            limit = args.mem_ceiling * 1024 * 1024
            if peak > limit:
                print(report, file=sys.stderr)
                raise SystemExit(
                    f"bench memory ceiling exceeded: peak RSS "
                    f"{peak / 1048576:.1f} MiB > {args.mem_ceiling:.1f} MiB"
                )
        if not trend_ok:
            print(report, file=sys.stderr)
            raise SystemExit(
                "bench trend gate failed: this run is a slow-direction "
                "trajectory outlier (see the trend report above)"
            )
        return report
    sections: list[str] = []
    started = time.time()

    if args.target in ("table1", "figure7", "all"):
        t1 = table1(subset=subset)
        if args.target != "figure7":
            sections.append(t1.format())
        if args.target in ("figure7", "all"):
            sections.append(figure7(t1).format())
    if args.target in ("table2", "all"):
        sections.append(table2(subset=subset).format())
    if args.target in ("table3", "all"):
        sections.append(table3(subset=subset).format())

    report = ("\n\n" + "=" * 72 + "\n\n").join(sections)
    report += f"\n\n(generated in {time.time() - started:.1f}s)\n"
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
    return report


def _run_fleet_target(args) -> str:
    """The ``fleet`` verb: drill, or a (resumable) journalled corpus run."""
    from repro.harness.bench import SCALING_SEED
    from repro.harness.fleet import (
        DEFAULT_FLEET_WORKERS,
        FleetConfig,
        build_corpus,
        compare_against_serial,
        corpus_config_fingerprint,
        run_fleet_corpus,
        run_fleet_drill,
        serial_corpus_entries,
    )

    if args.drill:
        drill = run_fleet_drill(
            corpus=args.corpus,
            modules=args.modules,
            seed=args.corpus_seed
            if args.corpus_seed is not None
            else SCALING_SEED,
            workers=args.workers or 4,
            rate=args.fault_rate,
            fault_seed=args.fault_seed if args.fault_seed is not None else 2,
        )
        if not drill["ok"]:
            print(drill["report"], file=sys.stderr)
            raise SystemExit(
                "fleet drill failed: a fault escaped containment or the "
                "fleet diverged from serial"
            )
        return drill["report"]

    seed = args.corpus_seed if args.corpus_seed is not None else SCALING_SEED
    corpus_items = build_corpus(args.corpus, args.modules, seed)
    config_fp = corpus_config_fingerprint(args.corpus, args.modules, seed, None)
    config = FleetConfig(workers=args.workers or DEFAULT_FLEET_WORKERS)
    result = run_fleet_corpus(
        corpus_items,
        config=config,
        journal_path=args.journal,
        resume=args.resume,
        config_fingerprint=config_fp,
        stop_after=args.max_jobs,
        metrics=getattr(args, "metrics", None),
    )
    stats = result.fleet_stats
    lines = [
        f"fleet: corpus={args.corpus} jobs={len(result.workloads)} "
        f"workers={config.workers}",
        f"  completed: {len(result.completed)}, "
        f"resumed from journal: {len(result.resumed)}, "
        f"unfinished: {len(result.unfinished)}",
    ]
    if stats:
        lines.append(
            f"  respawns: {stats.get('respawns', 0)}, "
            f"requeues: {stats.get('requeues', 0)}, "
            f"lease expiries: {stats.get('lease_expiries', 0)}, "
            f"quarantined: {len(stats.get('quarantined', ()))}"
        )
    if result.journal_path:
        lines.append(f"  journal: {result.journal_path}")
    if not result.finished:
        lines.append(
            f"  run truncated after --max-jobs {args.max_jobs}; resume "
            f"with: fleet --corpus {args.corpus} --modules {args.modules} "
            f"--journal {args.journal} --resume"
        )
        return "\n".join(lines)

    record = result.record(label=args.label)
    merges = record["merges"]
    lines.append(
        f"  merges: {merges}, functions: {len(record['functions'])}, "
        "record: validated"
    )
    if args.verify_serial:
        serial = serial_corpus_entries(
            [
                (name, module.copy(), profile)
                for name, module, profile in corpus_items
            ]
        )
        drift = compare_against_serial(result.entries, serial)
        if drift:
            lines.append("  DECISION DRIFT vs serial:")
            lines.extend(f"    {problem}" for problem in drift)
            print("\n".join(lines), file=sys.stderr)
            raise SystemExit(
                f"fleet run diverged from serial in {len(drift)} place(s)"
            )
        lines.append(
            f"  verify-serial: {len(serial)} jobs byte-identical to the "
            "sequential driver"
        )
    if args.record:
        from repro.obs.ledger import Ledger
        from repro.obs.replay import build_log_set

        ledger = Ledger(args.ledger) if args.ledger else Ledger()
        # Workers ship their decision events back with task results, so
        # the merged corpus record gets a flight-recorder log too —
        # making fleet runs bisectable like any `record` run.
        log_functions = result.decision_log_functions()
        if log_functions:
            record["decision_log"] = ledger.record_decisions(
                build_log_set(log_functions)
            )
        digest = ledger.record(record)
        lines.append(f"  ledger: recorded {digest[:12]} -> {ledger.root}")
        if "decision_log" in record:
            lines.append(
                f"  decision log: {record['decision_log'][:12]} "
                f"({len(log_functions)} function stream(s))"
            )
    return "\n".join(lines)


def main() -> None:  # console entry point
    print(run())


if __name__ == "__main__":
    main()
