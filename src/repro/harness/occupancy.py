"""Block-occupancy reporting: how full did formation pack the blocks?

The whole point of convergent formation is to "fill each block as full as
possible to amortize the runtime cost of mapping each fixed-size block"
(paper Section 1).  This module measures exactly that: static and
dynamically-weighted block occupancy against the 128-instruction format,
before and after formation — the most direct view of convergence quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.constraints import TripsConstraints, estimate_blocks
from repro.analysis.liveness import Liveness
from repro.ir.function import Module
from repro.sim.functional import SimStats


@dataclass
class OccupancyReport:
    """Occupancy statistics for one module."""

    #: per block: (size incl. estimated overheads, dynamic executions)
    blocks: list[tuple[str, int, int]] = field(default_factory=list)
    slot_size: int = 128

    @property
    def static_mean(self) -> float:
        if not self.blocks:
            return 0.0
        return sum(size for _, size, _ in self.blocks) / len(self.blocks)

    @property
    def dynamic_mean(self) -> float:
        """Execution-weighted mean block size (what the window really holds)."""
        total_execs = sum(n for _, _, n in self.blocks)
        if total_execs == 0:
            return self.static_mean
        return sum(size * n for _, size, n in self.blocks) / total_execs

    @property
    def static_utilization(self) -> float:
        return self.static_mean / self.slot_size

    @property
    def dynamic_utilization(self) -> float:
        return self.dynamic_mean / self.slot_size

    def histogram(self, buckets: int = 8) -> list[int]:
        """Dynamic-weighted histogram of block occupancy (equal buckets)."""
        counts = [0] * buckets
        width = self.slot_size / buckets
        for _, size, execs in self.blocks:
            index = min(int(size / width), buckets - 1)
            counts[index] += max(execs, 1)
        return counts

    def format(self) -> str:
        lines = [
            f"blocks: {len(self.blocks)}  "
            f"static occupancy: {self.static_mean:.1f}/{self.slot_size} "
            f"({100 * self.static_utilization:.0f}%)  "
            f"dynamic occupancy: {self.dynamic_mean:.1f}/{self.slot_size} "
            f"({100 * self.dynamic_utilization:.0f}%)",
        ]
        counts = self.histogram()
        peak = max(counts) or 1
        width = self.slot_size // len(counts)
        for index, count in enumerate(counts):
            bar = "#" * max(1 if count else 0, round(24 * count / peak))
            lines.append(
                f"  {index * width:3d}-{(index + 1) * width - 1:3d} "
                f"instrs | {bar} {count}"
            )
        return "\n".join(lines)


def occupancy_report(
    module: Module,
    stats: Optional[SimStats] = None,
    constraints: Optional[TripsConstraints] = None,
) -> OccupancyReport:
    """Measure block occupancy (with estimator overheads included).

    ``stats`` from a functional run supplies dynamic execution counts; when
    omitted, every block is weighted equally.
    """
    constraints = constraints or TripsConstraints()
    report = OccupancyReport(slot_size=constraints.max_instructions)
    counts = stats.block_counts if stats is not None else {}
    for func in module:
        live = Liveness(func)
        items = [
            (block, live.live_out[name])
            for name, block in func.blocks.items()
        ]
        estimates = estimate_blocks(items, constraints)
        for (block, _), estimate in zip(items, estimates):
            execs = counts.get((func.name, block.name), 0)
            report.blocks.append((f"{func.name}/{block.name}",
                                  estimate.total_instructions, execs))
    return report
