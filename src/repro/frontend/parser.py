"""Recursive-descent parser for TL."""

from __future__ import annotations

from typing import Optional

from repro.frontend import ast_nodes as ast
from repro.frontend.lexer import Token, tokenize


class ParseError(Exception):
    """Raised on syntactically invalid TL source."""


# Binary operator precedence, loosest first.
_PRECEDENCE = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


class Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.peek()
        if not self.check(kind, text):
            want = text or kind
            raise ParseError(
                f"line {tok.line}: expected {want!r}, found {tok.text!r}"
            )
        return self.advance()

    # -- grammar ------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        functions = []
        while not self.check("eof"):
            functions.append(self.parse_function())
        return ast.Program(functions)

    def parse_function(self) -> ast.FuncDecl:
        self.expect("kw", "fn")
        name = self.expect("name").text
        self.expect("sym", "(")
        params = []
        if not self.check("sym", ")"):
            params.append(self.expect("name").text)
            while self.accept("sym", ","):
                params.append(self.expect("name").text)
        self.expect("sym", ")")
        body = self.parse_block()
        return ast.FuncDecl(name, params, body)

    def parse_block(self) -> list[ast.Stmt]:
        self.expect("sym", "{")
        stmts = []
        while not self.check("sym", "}"):
            stmts.append(self.parse_statement())
        self.expect("sym", "}")
        return stmts

    def parse_statement(self) -> ast.Stmt:
        if self.check("kw", "var"):
            return self.parse_var_decl()
        if self.check("kw", "if"):
            return self.parse_if()
        if self.check("kw", "while"):
            return self.parse_while()
        if self.check("kw", "for"):
            return self.parse_for()
        if self.accept("kw", "return"):
            value = None
            if not self.check("sym", ";"):
                value = self.parse_expr()
            self.expect("sym", ";")
            return ast.Return(value)
        if self.accept("kw", "break"):
            self.expect("sym", ";")
            return ast.Break()
        if self.accept("kw", "continue"):
            self.expect("sym", ";")
            return ast.Continue()
        return self.parse_simple_statement(expect_semicolon=True)

    def parse_var_decl(self) -> ast.VarDecl:
        self.expect("kw", "var")
        name = self.expect("name").text
        self.expect("sym", "=")
        init = self.parse_expr()
        self.expect("sym", ";")
        return ast.VarDecl(name, init)

    def parse_simple_statement(self, expect_semicolon: bool) -> ast.Stmt:
        """Assignment, indexed store, or expression statement."""
        start = self.pos
        if self.check("name"):
            name = self.advance().text
            if self.accept("sym", "="):
                value = self.parse_expr()
                if expect_semicolon:
                    self.expect("sym", ";")
                return ast.Assign(name, value)
            if self.check("sym", "["):
                # Could be `a[i] = v;` (store) or `a[i] + ...` (expression).
                self.advance()
                index = self.parse_expr()
                self.expect("sym", "]")
                if self.accept("sym", "="):
                    value = self.parse_expr()
                    if expect_semicolon:
                        self.expect("sym", ";")
                    return ast.StoreStmt(ast.Var(name), index, value)
            self.pos = start  # fall through to expression statement
        expr = self.parse_expr()
        if expect_semicolon:
            self.expect("sym", ";")
        return ast.ExprStmt(expr)

    def parse_if(self) -> ast.If:
        self.expect("kw", "if")
        self.expect("sym", "(")
        cond = self.parse_expr()
        self.expect("sym", ")")
        then = self.parse_block()
        orelse: list[ast.Stmt] = []
        if self.accept("kw", "else"):
            if self.check("kw", "if"):
                orelse = [self.parse_if()]
            else:
                orelse = self.parse_block()
        return ast.If(cond, then, orelse)

    def parse_while(self) -> ast.While:
        self.expect("kw", "while")
        self.expect("sym", "(")
        cond = self.parse_expr()
        self.expect("sym", ")")
        body = self.parse_block()
        return ast.While(cond, body)

    def parse_for(self) -> ast.For:
        self.expect("kw", "for")
        self.expect("sym", "(")
        if self.check("kw", "var"):
            self.expect("kw", "var")
            name = self.expect("name").text
            self.expect("sym", "=")
            init: ast.Stmt = ast.VarDecl(name, self.parse_expr())
        else:
            name = self.expect("name").text
            self.expect("sym", "=")
            init = ast.Assign(name, self.parse_expr())
        self.expect("sym", ";")
        cond = self.parse_expr()
        self.expect("sym", ";")
        step = self.parse_simple_statement(expect_semicolon=False)
        if not isinstance(step, ast.Assign):
            raise ParseError("for-loop step must be an assignment")
        self.expect("sym", ")")
        body = self.parse_block()
        return ast.For(init, cond, step, body)

    # -- expressions ----------------------------------------------------------

    def parse_expr(self, level: int = 0) -> ast.Expr:
        if level >= len(_PRECEDENCE):
            return self.parse_unary()
        left = self.parse_expr(level + 1)
        ops = _PRECEDENCE[level]
        while self.peek().kind == "sym" and self.peek().text in ops:
            op = self.advance().text
            right = self.parse_expr(level + 1)
            left = ast.BinOp(op, left, right)
        return left

    def parse_unary(self) -> ast.Expr:
        if self.accept("sym", "-"):
            return ast.UnOp("-", self.parse_unary())
        if self.accept("sym", "!"):
            return ast.UnOp("!", self.parse_unary())
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while self.check("sym", "["):
            self.advance()
            index = self.parse_expr()
            self.expect("sym", "]")
            expr = ast.Index(expr, index)
        return expr

    def parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == "num":
            self.advance()
            return ast.Num(tok.value)
        if tok.kind == "name":
            self.advance()
            if self.accept("sym", "("):
                args = []
                if not self.check("sym", ")"):
                    args.append(self.parse_expr())
                    while self.accept("sym", ","):
                        args.append(self.parse_expr())
                self.expect("sym", ")")
                return ast.Call(tok.text, args)
            return ast.Var(tok.text)
        if self.accept("sym", "("):
            expr = self.parse_expr()
            self.expect("sym", ")")
            return expr
        raise ParseError(f"line {tok.line}: unexpected token {tok.text!r}")


def parse(source: str) -> ast.Program:
    """Parse TL source text into a :class:`Program`."""
    return Parser(tokenize(source)).parse_program()
