"""AST-level transforms: front-end for-loop unrolling and inlining.

The Scale compiler performs for-loop unrolling and inlining in its front
end, *before* hyperblock formation (paper Figure 6).  These transforms
reproduce that: classical for-loop unrolling removes intermediate tests
(which head duplication cannot — while-loop unrolling must predicate every
iteration), and is exactly why the paper's microbenchmarks see little extra
benefit from head duplication on high-trip-count for loops.
"""

from __future__ import annotations

import copy
from typing import Optional

from repro.frontend import ast_nodes as ast


# ---------------------------------------------------------------------------
# For-loop unrolling
# ---------------------------------------------------------------------------


def _collect_assigned(stmts: list[ast.Stmt], into: set[str]) -> None:
    for stmt in stmts:
        if isinstance(stmt, (ast.Assign, ast.VarDecl)):
            into.add(stmt.name)
        elif isinstance(stmt, ast.If):
            _collect_assigned(stmt.then, into)
            _collect_assigned(stmt.orelse, into)
        elif isinstance(stmt, ast.While):
            _collect_assigned(stmt.body, into)
        elif isinstance(stmt, ast.For):
            _collect_assigned([stmt.init, stmt.step], into)
            _collect_assigned(stmt.body, into)


def _has_disallowed(stmts: list[ast.Stmt]) -> bool:
    """Loops containing control escapes or inner loops are not unrolled."""
    for stmt in stmts:
        if isinstance(stmt, (ast.Break, ast.Continue, ast.Return, ast.While, ast.For)):
            return True
        if isinstance(stmt, ast.If):
            if _has_disallowed(stmt.then) or _has_disallowed(stmt.orelse):
                return True
    return False


def _affine_step(stmt: ast.Assign, var: str) -> Optional[int]:
    """Return c for steps of the form ``var = var + c`` (c a positive int)."""
    value = stmt.value
    if (
        isinstance(value, ast.BinOp)
        and value.op == "+"
        and isinstance(value.left, ast.Var)
        and value.left.name == var
        and isinstance(value.right, ast.Num)
        and isinstance(value.right.value, int)
        and value.right.value > 0
    ):
        return value.right.value
    return None


def _unrollable(loop: ast.For) -> Optional[tuple[str, str, ast.Expr, int]]:
    """If the loop is a classic affine for loop, return (var, cmp, bound, step)."""
    init_name = loop.init.name
    if not isinstance(loop.step, ast.Assign) or loop.step.name != init_name:
        return None
    step = _affine_step(loop.step, init_name)
    if step is None:
        return None
    cond = loop.cond
    if not (
        isinstance(cond, ast.BinOp)
        and cond.op in ("<", "<=")
        and isinstance(cond.left, ast.Var)
        and cond.left.name == init_name
    ):
        return None
    bound = cond.right
    if not isinstance(bound, (ast.Num, ast.Var)):
        return None
    if _has_disallowed(loop.body):
        return None
    assigned: set[str] = set()
    _collect_assigned(loop.body, assigned)
    if init_name in assigned:
        return None
    if isinstance(bound, ast.Var) and bound.name in assigned:
        return None
    return init_name, cond.op, bound, step


def _unroll_for(loop: ast.For, factor: int) -> list[ast.Stmt]:
    """Rewrite one affine for loop into a main unrolled loop + remainder."""
    info = _unrollable(loop)
    if info is None or factor < 2:
        return [loop]
    var, cmp_op, bound, step = info
    body = loop.body

    unrolled_body: list[ast.Stmt] = []
    for k in range(factor):
        if k:
            unrolled_body.append(
                ast.Assign(var, ast.BinOp("+", ast.Var(var), ast.Num(step)))
            )
        unrolled_body.extend(copy.deepcopy(body))

    # Main loop: run while iteration i + (factor-1)*step is still valid;
    # intermediate tests are gone — the point of front-end unrolling.
    main_cond = ast.BinOp(
        cmp_op,
        ast.BinOp("+", ast.Var(var), ast.Num((factor - 1) * step)),
        copy.deepcopy(bound),
    )
    main = ast.For(
        init=loop.init,
        cond=main_cond,
        step=ast.Assign(var, ast.BinOp("+", ast.Var(var), ast.Num(step))),
        body=unrolled_body,
    )
    # Remainder loop (post-conditioning): the leftover < factor iterations.
    remainder = ast.While(
        cond=copy.deepcopy(loop.cond),
        body=copy.deepcopy(body)
        + [ast.Assign(var, ast.BinOp("+", ast.Var(var), ast.Num(step)))],
    )
    return [main, remainder]


def _unroll_stmts(stmts: list[ast.Stmt], factor: int) -> list[ast.Stmt]:
    result: list[ast.Stmt] = []
    for stmt in stmts:
        if isinstance(stmt, ast.If):
            stmt.then = _unroll_stmts(stmt.then, factor)
            stmt.orelse = _unroll_stmts(stmt.orelse, factor)
            result.append(stmt)
        elif isinstance(stmt, ast.While):
            stmt.body = _unroll_stmts(stmt.body, factor)
            result.append(stmt)
        elif isinstance(stmt, ast.For):
            stmt.body = _unroll_stmts(stmt.body, factor)
            result.extend(_unroll_for(stmt, factor))
        else:
            result.append(stmt)
    return result


def unroll_for_loops(program: ast.Program, factor: int = 4) -> ast.Program:
    """Unroll every innermost affine for loop by ``factor`` (in place)."""
    if factor < 2:
        return program
    for func in program.functions:
        func.body = _unroll_stmts(func.body, factor)
    return program


# ---------------------------------------------------------------------------
# Inlining
# ---------------------------------------------------------------------------


def _substitute(expr: ast.Expr, bindings: dict[str, ast.Expr]) -> ast.Expr:
    if isinstance(expr, ast.Num):
        return ast.Num(expr.value)
    if isinstance(expr, ast.Var):
        bound = bindings.get(expr.name)
        return copy.deepcopy(bound) if bound is not None else ast.Var(expr.name)
    if isinstance(expr, ast.BinOp):
        return ast.BinOp(
            expr.op,
            _substitute(expr.left, bindings),
            _substitute(expr.right, bindings),
        )
    if isinstance(expr, ast.UnOp):
        return ast.UnOp(expr.op, _substitute(expr.operand, bindings))
    if isinstance(expr, ast.Call):
        return ast.Call(expr.callee, [_substitute(a, bindings) for a in expr.args])
    if isinstance(expr, ast.Index):
        return ast.Index(
            _substitute(expr.base, bindings), _substitute(expr.index, bindings)
        )
    raise TypeError(f"cannot substitute in {expr!r}")


def _expression_function(func: ast.FuncDecl) -> Optional[ast.Expr]:
    """The body expression of a pure single-return function, if it is one."""
    if len(func.body) != 1 or not isinstance(func.body[0], ast.Return):
        return None
    expr = func.body[0].value
    if expr is None:
        return None

    def no_self_call(e: ast.Expr) -> bool:
        if isinstance(e, ast.Call):
            if e.callee == func.name:
                return False
            return all(no_self_call(a) for a in e.args)
        if isinstance(e, ast.BinOp):
            return no_self_call(e.left) and no_self_call(e.right)
        if isinstance(e, ast.UnOp):
            return no_self_call(e.operand)
        if isinstance(e, ast.Index):
            return no_self_call(e.base) and no_self_call(e.index)
        return True

    return expr if no_self_call(expr) else None


def _inline_expr(expr: ast.Expr, table: dict[str, tuple[list[str], ast.Expr]]) -> ast.Expr:
    if isinstance(expr, ast.BinOp):
        return ast.BinOp(
            expr.op, _inline_expr(expr.left, table), _inline_expr(expr.right, table)
        )
    if isinstance(expr, ast.UnOp):
        return ast.UnOp(expr.op, _inline_expr(expr.operand, table))
    if isinstance(expr, ast.Index):
        return ast.Index(
            _inline_expr(expr.base, table), _inline_expr(expr.index, table)
        )
    if isinstance(expr, ast.Call):
        args = [_inline_expr(a, table) for a in expr.args]
        entry = table.get(expr.callee)
        if entry is not None:
            params, body = entry
            if len(params) == len(args) and all(
                isinstance(a, (ast.Num, ast.Var)) for a in args
            ):
                return _substitute(body, dict(zip(params, args)))
        return ast.Call(expr.callee, args)
    return expr


def _inline_stmts(stmts: list[ast.Stmt], table) -> None:
    for stmt in stmts:
        if isinstance(stmt, (ast.VarDecl,)):
            stmt.init = _inline_expr(stmt.init, table)
        elif isinstance(stmt, ast.Assign):
            stmt.value = _inline_expr(stmt.value, table)
        elif isinstance(stmt, ast.StoreStmt):
            stmt.base = _inline_expr(stmt.base, table)
            stmt.index = _inline_expr(stmt.index, table)
            stmt.value = _inline_expr(stmt.value, table)
        elif isinstance(stmt, ast.If):
            stmt.cond = _inline_expr(stmt.cond, table)
            _inline_stmts(stmt.then, table)
            _inline_stmts(stmt.orelse, table)
        elif isinstance(stmt, ast.While):
            stmt.cond = _inline_expr(stmt.cond, table)
            _inline_stmts(stmt.body, table)
        elif isinstance(stmt, ast.For):
            _inline_stmts([stmt.init], table)
            stmt.cond = _inline_expr(stmt.cond, table)
            _inline_stmts([stmt.step], table)
            _inline_stmts(stmt.body, table)
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            stmt.value = _inline_expr(stmt.value, table)
        elif isinstance(stmt, ast.ExprStmt):
            stmt.expr = _inline_expr(stmt.expr, table)


def inline_functions(program: ast.Program) -> ast.Program:
    """Inline pure expression functions at simple (Num/Var-argument) call
    sites — the front-end inlining stage of the compiler flow (in place)."""
    table = {}
    for func in program.functions:
        body = _expression_function(func)
        if body is not None:
            table[func.name] = (func.params, body)
    for func in program.functions:
        _inline_stmts(func.body, table)
    return program
