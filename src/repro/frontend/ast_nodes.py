"""AST node definitions for TL."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

# -- expressions -------------------------------------------------------------


@dataclass
class Num:
    value: Union[int, float]


@dataclass
class Var:
    name: str


@dataclass
class BinOp:
    op: str  # '+', '-', '*', '/', '%', '&', '|', '^', '<<', '>>',
    #          '==', '!=', '<', '<=', '>', '>=', '&&', '||'
    left: "Expr"
    right: "Expr"


@dataclass
class UnOp:
    op: str  # '-', '!'
    operand: "Expr"


@dataclass
class Call:
    callee: str
    args: list["Expr"]


@dataclass
class Index:
    """``base[index]`` — a load from address ``base + index``."""

    base: "Expr"
    index: "Expr"


Expr = Union[Num, Var, BinOp, UnOp, Call, Index]

COMPARISONS = {"==", "!=", "<", "<=", ">", ">="}

# -- statements --------------------------------------------------------------


@dataclass
class VarDecl:
    name: str
    init: Expr


@dataclass
class Assign:
    name: str
    value: Expr


@dataclass
class StoreStmt:
    """``base[index] = value``."""

    base: Expr
    index: Expr
    value: Expr


@dataclass
class If:
    cond: Expr
    then: list["Stmt"]
    orelse: list["Stmt"] = field(default_factory=list)


@dataclass
class While:
    cond: Expr
    body: list["Stmt"]


@dataclass
class For:
    """``for (init; cond; step) body`` with single-variable init/step.

    Kept structured (rather than desugared to While) so front-end for-loop
    unrolling can recognize affine loops.
    """

    init: Union[VarDecl, Assign]
    cond: Expr
    step: Assign
    body: list["Stmt"]


@dataclass
class Return:
    value: Optional[Expr] = None


@dataclass
class Break:
    pass


@dataclass
class Continue:
    pass


@dataclass
class ExprStmt:
    expr: Expr


Stmt = Union[VarDecl, Assign, StoreStmt, If, While, For, Return, Break,
             Continue, ExprStmt]

# -- top level -----------------------------------------------------------------


@dataclass
class FuncDecl:
    name: str
    params: list[str]
    body: list[Stmt]


@dataclass
class Program:
    functions: list[FuncDecl]

    def function(self, name: str) -> FuncDecl:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(name)
