"""Lexer for TL, the small C-like language the workloads are written in."""

from __future__ import annotations

from dataclasses import dataclass
KEYWORDS = {
    "fn", "var", "if", "else", "while", "for", "return", "break", "continue",
}

# Longest-match-first symbol table.
SYMBOLS = [
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ",", ";",
]


class LexError(Exception):
    """Raised on malformed input, with line information."""


@dataclass(frozen=True)
class Token:
    kind: str  # 'num', 'name', 'kw', 'sym', 'eof'
    text: str
    value: object = None
    line: int = 0

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line={self.line})"


def tokenize(source: str) -> list[Token]:
    """Turn TL source text into a token list ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            while j < n and (source[j].isdigit() or source[j] == "."):
                if source[j] == ".":
                    if is_float:
                        raise LexError(f"line {line}: bad number")
                    is_float = True
                j += 1
            text = source[i:j]
            value = float(text) if is_float else int(text)
            tokens.append(Token("num", text, value, line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "kw" if text in KEYWORDS else "name"
            tokens.append(Token(kind, text, line=line))
            i = j
            continue
        for sym in SYMBOLS:
            if source.startswith(sym, i):
                tokens.append(Token("sym", sym, line=line))
                i += len(sym)
                break
        else:
            raise LexError(f"line {line}: unexpected character {ch!r}")
    tokens.append(Token("eof", "", line=line))
    return tokens
