"""Lowering: TL AST to the RISC-like predicated IR.

Variables live in fixed virtual registers (the IR is not SSA), so loop
carried values work naturally with the predicated-merge machinery.
Block names are dot-free (profile provenance uses dots for duplicates).
"""

from __future__ import annotations

from repro.frontend import ast_nodes as ast
from repro.ir.builder import FunctionBuilder
from repro.ir.function import Module
from repro.ir.opcodes import Opcode
from repro.ir.regdense import renumber_registers


class LoweringError(Exception):
    """Raised for semantic errors (unknown variables, bad builtins)."""


_BINOP_OPCODES = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.MOD,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<<": Opcode.SHL,
    ">>": Opcode.SHR,
    "==": Opcode.TEQ,
    "!=": Opcode.TNE,
    "<": Opcode.TLT,
    "<=": Opcode.TLE,
    ">": Opcode.TGT,
    ">=": Opcode.TGE,
}

#: Float-typed arithmetic is exposed as builtins (TL is otherwise untyped).
_FLOAT_BUILTINS = {
    "fadd": Opcode.FADD,
    "fsub": Opcode.FSUB,
    "fmul": Opcode.FMUL,
    "fdiv": Opcode.FDIV,
}


class _FunctionLowerer:
    def __init__(self, decl: ast.FuncDecl, known_functions: set[str]):
        self.decl = decl
        self.known = known_functions
        self.fb = FunctionBuilder(decl.name, nparams=len(decl.params))
        self.vars: dict[str, int] = {p: i for i, p in enumerate(decl.params)}
        self._counter = 0
        self.terminated = False
        #: stack of (continue_target, break_target)
        self.loop_stack: list[tuple[str, str]] = []

    # -- helpers ------------------------------------------------------------

    def _name(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _var_reg(self, name: str) -> int:
        reg = self.vars.get(name)
        if reg is None:
            raise LoweringError(
                f"@{self.decl.name}: undefined variable {name!r}"
            )
        return reg

    # -- expressions ----------------------------------------------------------

    def lower_expr(self, expr: ast.Expr) -> int:
        fb = self.fb
        if isinstance(expr, ast.Num):
            return fb.movi(expr.value)
        if isinstance(expr, ast.Var):
            return self._var_reg(expr.name)
        if isinstance(expr, ast.UnOp):
            value = self.lower_expr(expr.operand)
            if expr.op == "-":
                return fb.op(Opcode.NEG, value)
            if expr.op == "!":
                return fb.teq(value, fb.movi(0))
            raise LoweringError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, ast.BinOp):
            if expr.op in ("&&", "||"):
                left = self._as_bool(expr.left)
                right = self._as_bool(expr.right)
                op = Opcode.AND if expr.op == "&&" else Opcode.OR
                return fb.op(op, left, right)
            opcode = _BINOP_OPCODES.get(expr.op)
            if opcode is None:
                raise LoweringError(f"unknown operator {expr.op!r}")
            left = self.lower_expr(expr.left)
            right = self.lower_expr(expr.right)
            return fb.op(opcode, left, right)
        if isinstance(expr, ast.Call):
            opcode = _FLOAT_BUILTINS.get(expr.callee)
            if opcode is not None:
                if len(expr.args) != 2:
                    raise LoweringError(f"{expr.callee} takes two arguments")
                return fb.op(
                    opcode,
                    self.lower_expr(expr.args[0]),
                    self.lower_expr(expr.args[1]),
                )
            if expr.callee not in self.known:
                raise LoweringError(f"call to unknown function {expr.callee!r}")
            args = [self.lower_expr(a) for a in expr.args]
            return fb.call(expr.callee, *args)
        if isinstance(expr, ast.Index):
            base = self.lower_expr(expr.base)
            if isinstance(expr.index, ast.Num) and isinstance(expr.index.value, int):
                return fb.load(base, offset=expr.index.value)
            index = self.lower_expr(expr.index)
            return fb.load(fb.add(base, index))
        raise LoweringError(f"cannot lower expression {expr!r}")

    def _as_bool(self, expr: ast.Expr) -> int:
        """A register guaranteed to hold 0/1 for the expression's truth."""
        value = self.lower_expr(expr)
        if isinstance(expr, ast.BinOp) and expr.op in ast.COMPARISONS:
            return value
        if isinstance(expr, ast.UnOp) and expr.op == "!":
            return value
        return self.fb.tne(value, self.fb.movi(0))

    # -- statements -----------------------------------------------------------

    def lower_stmts(self, stmts: list[ast.Stmt]) -> None:
        for stmt in stmts:
            if self.terminated:
                break  # unreachable code after return/break/continue
            self.lower_stmt(stmt)

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        fb = self.fb
        if isinstance(stmt, ast.VarDecl):
            value = self.lower_expr(stmt.init)
            if stmt.name in self.vars:
                fb.mov_to(self.vars[stmt.name], value)
            else:
                reg = fb.mov(value)
                self.vars[stmt.name] = reg
        elif isinstance(stmt, ast.Assign):
            value = self.lower_expr(stmt.value)
            fb.mov_to(self._var_reg(stmt.name), value)
        elif isinstance(stmt, ast.StoreStmt):
            base = self.lower_expr(stmt.base)
            value = self.lower_expr(stmt.value)
            if isinstance(stmt.index, ast.Num) and isinstance(stmt.index.value, int):
                fb.store(base, value, offset=stmt.index.value)
            else:
                index = self.lower_expr(stmt.index)
                fb.store(fb.add(base, index), value)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self._lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            value = self.lower_expr(stmt.value) if stmt.value is not None else None
            fb.ret(value)
            self.terminated = True
        elif isinstance(stmt, ast.Break):
            fb.br(self.loop_stack[-1][1])
            self.terminated = True
        elif isinstance(stmt, ast.Continue):
            fb.br(self.loop_stack[-1][0])
            self.terminated = True
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr)
        else:
            raise LoweringError(f"cannot lower statement {stmt!r}")

    def _lower_if(self, stmt: ast.If) -> None:
        fb = self.fb
        cond = self._as_bool(stmt.cond)
        then_name = self._name("then")
        join_name = self._name("join")
        else_name = self._name("else") if stmt.orelse else join_name
        fb.br_cond(cond, then_name, else_name)

        fb.block(then_name)
        self.terminated = False
        self.lower_stmts(stmt.then)
        then_falls = not self.terminated
        if then_falls:
            fb.br(join_name)

        else_falls = True
        if stmt.orelse:
            fb.block(else_name)
            self.terminated = False
            self.lower_stmts(stmt.orelse)
            else_falls = not self.terminated
            if else_falls:
                fb.br(join_name)

        if then_falls or else_falls or not stmt.orelse:
            fb.block(join_name)
            self.terminated = False
        else:
            self.terminated = True

    def _lower_while(self, stmt: ast.While) -> None:
        fb = self.fb
        head = self._name("wh")
        body = self._name("body")
        exit_name = self._name("wx")
        fb.br(head)
        fb.block(head)
        cond = self._as_bool(stmt.cond)
        fb.br_cond(cond, body, exit_name)
        fb.block(body)
        self.loop_stack.append((head, exit_name))
        self.terminated = False
        self.lower_stmts(stmt.body)
        if not self.terminated:
            fb.br(head)
        self.loop_stack.pop()
        fb.block(exit_name)
        self.terminated = False

    def _lower_for(self, stmt: ast.For) -> None:
        fb = self.fb
        self.lower_stmt(stmt.init)
        head = self._name("for")
        body = self._name("body")
        latch = self._name("step")
        exit_name = self._name("fx")
        fb.br(head)
        fb.block(head)
        cond = self._as_bool(stmt.cond)
        fb.br_cond(cond, body, exit_name)
        fb.block(body)
        self.loop_stack.append((latch, exit_name))
        self.terminated = False
        self.lower_stmts(stmt.body)
        if not self.terminated:
            fb.br(latch)
        self.loop_stack.pop()
        fb.block(latch)
        self.terminated = False
        self.lower_stmt(stmt.step)
        fb.br(head)
        fb.block(exit_name)
        self.terminated = False

    # -- top level ------------------------------------------------------------

    def lower(self):
        self.fb.block("entry", entry=True)
        self.lower_stmts(self.decl.body)
        if not self.terminated:
            self.fb.ret(self.fb.movi(0))
        func = self.fb.finish()
        func.remove_unreachable_blocks()
        # Dropping unreachable blocks (and short-circuit lowering in
        # general) can leave gaps in the register names; canonicalize to
        # first-appearance dense numbering so the bitmask dataflow engine
        # never pays for names that no longer exist.  The mapping is
        # monotonic, so downstream results are unchanged.
        renumber_registers(func)
        return func


def lower_program(program: ast.Program, name: str = "tl") -> Module:
    """Lower a parsed TL program to an IR module."""
    known = {f.name for f in program.functions}
    module = Module(name)
    for decl in program.functions:
        module.add_function(_FunctionLowerer(decl, known).lower())
    return module
