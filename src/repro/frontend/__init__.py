"""TL front end: lexer, parser, AST transforms, and lowering to IR.

``compile_tl`` is the one-call entry point::

    module = compile_tl(source, unroll_for=4, inline=True)
"""

from repro.frontend.ast_nodes import Program
from repro.frontend.lexer import LexError, tokenize
from repro.frontend.lower import LoweringError, lower_program
from repro.frontend.parser import ParseError, parse
from repro.frontend.transforms import inline_functions, unroll_for_loops


def compile_tl(
    source: str,
    name: str = "tl",
    unroll_for: int = 0,
    inline: bool = False,
):
    """Compile TL source text to an IR module.

    Args:
        source: TL program text.
        name: module name.
        unroll_for: front-end for-loop unroll factor (0/1 = off).
        inline: inline pure expression functions before lowering.
    """
    program = parse(source)
    if inline:
        inline_functions(program)
    if unroll_for and unroll_for > 1:
        unroll_for_loops(program, unroll_for)
    return lower_program(program, name=name)


__all__ = [
    "LexError",
    "LoweringError",
    "ParseError",
    "Program",
    "compile_tl",
    "inline_functions",
    "lower_program",
    "parse",
    "tokenize",
    "unroll_for_loops",
]
