"""Structural verification of IR functions.

The verifier checks invariants every transform must preserve.  Dynamic
invariants (exactly one branch fires per block execution) are enforced by
the functional simulator; this module covers the static ones.
"""

from __future__ import annotations

from repro.ir.function import Function, Module
from repro.ir.instruction import Instruction
from repro.ir.opcodes import OP_INFO, Opcode


class VerificationError(Exception):
    """Raised when an IR function violates a structural invariant."""


def verify_instruction(instr: Instruction, func: Function) -> None:
    info = OP_INFO[instr.op]
    if instr.op is not Opcode.CALL and len(instr.srcs) != info.nsrcs:
        # RET may carry zero or one source.
        if not (instr.op is Opcode.RET and len(instr.srcs) <= 1):
            raise VerificationError(
                f"@{func.name}: {instr!r} has {len(instr.srcs)} sources, "
                f"expected {info.nsrcs}"
            )
    if info.has_dest and instr.dest is None and instr.op is not Opcode.CALL:
        raise VerificationError(f"@{func.name}: {instr!r} missing destination")
    if not info.has_dest and instr.dest is not None:
        raise VerificationError(f"@{func.name}: {instr!r} must not write a register")
    if instr.op is Opcode.BR:
        if instr.target is None:
            raise VerificationError(f"@{func.name}: BR without target")
        if instr.target not in func.blocks:
            raise VerificationError(
                f"@{func.name}: branch to unknown block {instr.target!r}"
            )
    elif instr.target is not None:
        raise VerificationError(f"@{func.name}: {instr!r} must not have a target")
    if instr.op is Opcode.CALL and instr.callee is None:
        raise VerificationError(f"@{func.name}: CALL without callee")
    if instr.op is Opcode.MOVI and instr.imm is None:
        raise VerificationError(f"@{func.name}: MOVI without immediate")


def verify_function(func: Function) -> None:
    """Raise :class:`VerificationError` on any broken invariant."""
    if func.entry is None or func.entry not in func.blocks:
        raise VerificationError(f"@{func.name}: missing entry block")
    seen_uids: set[int] = set()
    for name, block in func.blocks.items():
        if block.name != name:
            raise VerificationError(
                f"@{func.name}: block registered as {name!r} is named {block.name!r}"
            )
        branches = block.branches()
        if not branches:
            raise VerificationError(f"@{func.name}/{name}: block has no branch")
        unpredicated = [b for b in branches if b.pred is None]
        # Branch predicates must partition the execution space.  The static
        # approximation: an unpredicated branch (always fires) is only legal
        # when it is the block's sole branch; otherwise every branch carries
        # a predicate and the functional simulator checks exactly-one-fires.
        if unpredicated and len(branches) > 1:
            raise VerificationError(
                f"@{func.name}/{name}: unpredicated branch coexists with "
                f"other branches"
            )
        for instr in block:
            verify_instruction(instr, func)
            if instr.uid in seen_uids:
                raise VerificationError(
                    f"@{func.name}/{name}: duplicate instruction uid {instr.uid}"
                )
            seen_uids.add(instr.uid)


def verify_module(mod: Module) -> None:
    for func in mod:
        verify_function(func)
        for instr in func.instructions():
            if instr.op is Opcode.CALL and instr.callee not in mod:
                raise VerificationError(
                    f"@{func.name}: call to unknown function @{instr.callee}"
                )
