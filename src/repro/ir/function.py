"""Functions, modules, and control-flow-graph views."""

from __future__ import annotations

import itertools
from typing import Iterator, Optional

from repro.ir import arena as _arena
from repro.ir.block import BasicBlock
from repro.ir.regdense import RegisterSpace

#: Process-wide monotonic stamp source for function versions (bumped when
#: the block *set* changes; see :attr:`Function.version`).
_fn_version_counter = itertools.count(1)


class CFG:
    """A successor/predecessor view of a function's blocks.

    Recomputed from branch targets on demand; most transforms mutate blocks
    and then simply ask for a fresh view.  Hyperblock formation instead
    patches the view in place through :meth:`update_block` /
    :meth:`remove_node` — a committed merge changes the successor list of
    exactly one block (and possibly deletes the absorbed block), so a full
    rebuild per merge is pure waste.
    """

    __slots__ = ("succs", "preds")

    def __init__(self, func: "Function"):
        self.succs: dict[str, list[str]] = {}
        self.preds: dict[str, list[str]] = {name: [] for name in func.blocks}
        successors_of = _arena.successors_of
        for name, block in func.blocks.items():
            succ = successors_of(block)
            self.succs[name] = succ
            for target in succ:
                if target in self.preds:
                    self.preds[target].append(name)

    def num_preds(self, name: str) -> int:
        return len(self.preds.get(name, []))

    # -- in-place patching ----------------------------------------------

    def update_block(self, name: str, new_succs: list[str]) -> None:
        """Replace ``name``'s successor list, fixing predecessor lists."""
        for target in self.succs.get(name, ()):
            preds = self.preds.get(target)
            if preds is not None and name in preds:
                preds.remove(name)
        self.succs[name] = list(new_succs)
        for target in new_succs:
            preds = self.preds.get(target)
            if preds is not None:
                preds.append(name)

    def remove_node(self, name: str) -> None:
        """Drop ``name`` from the view (after the block's removal)."""
        for target in self.succs.pop(name, ()):
            preds = self.preds.get(target)
            if preds is not None and name in preds:
                preds.remove(name)
        self.preds.pop(name, None)


class Function:
    """A function: an entry block plus a set of named basic blocks.

    The function owns the virtual-register namespace (``new_reg``) and the
    block-name namespace (``new_block_name``), so transforms that duplicate
    code can mint fresh names without collisions.
    """

    def __init__(self, name: str, params: Optional[list[int]] = None):
        self.name = name
        self.params: list[int] = list(params) if params else []
        self.blocks: dict[str, BasicBlock] = {}
        self.entry: Optional[str] = None
        #: The register interning table (name ↔ dense int); owns the
        #: allocation frontier and is stable across merges, so register
        #: names in printed IR never change behind an analysis's back.
        self.regs = RegisterSpace(self.params)
        self._name_counter = 0
        #: Monotonic stamp bumped whenever the block set changes (add or
        #: remove); per-block content changes bump the block's own version.
        self.version = next(_fn_version_counter)
        #: The struct-of-arrays analysis backend selected at build time:
        #: the process-global column store, or ``None`` under
        #: ``REPRO_IR_BACKEND=legacy``.  Trial guards checkpoint/restore
        #: through this handle; the ledger records which backend formed
        #: the function.
        self.arena = _arena.STORE if _arena.ENABLED else None

    def touch(self) -> int:
        """Re-stamp the function after a structural mutation."""
        self.version = next(_fn_version_counter)
        return self.version

    # -- namespaces ---------------------------------------------------------

    def new_reg(self) -> int:
        return self.regs.new()

    def note_reg(self, reg: int) -> int:
        """Record that ``reg`` is in use (keeps ``new_reg`` collision-free)."""
        return self.regs.note(reg)

    def max_reg(self) -> int:
        return self.regs.next_reg

    @property
    def _next_reg(self) -> int:
        # Backwards-compatible view of the interning table's frontier.
        return self.regs.next_reg

    def new_block_name(self, base: str, tag: str = "x") -> str:
        """A fresh block name derived from ``base``, e.g. ``loop.d3``."""
        root = base.split(".")[0]
        while True:
            self._name_counter += 1
            candidate = f"{root}.{tag}{self._name_counter}"
            if candidate not in self.blocks:
                return candidate

    # -- block management -----------------------------------------------

    def add_block(self, block: BasicBlock, entry: bool = False) -> BasicBlock:
        if block.name in self.blocks:
            raise ValueError(f"duplicate block name {block.name!r}")
        self.blocks[block.name] = block
        if entry or self.entry is None:
            self.entry = block.name
        for instr in block:
            for reg in instr.defs() + instr.uses():
                self.note_reg(reg)
        self.version = next(_fn_version_counter)
        return block

    def remove_block(self, name: str) -> None:
        if name == self.entry:
            raise ValueError(f"cannot remove entry block {name!r}")
        del self.blocks[name]
        self.version = next(_fn_version_counter)

    def block(self, name: str) -> BasicBlock:
        return self.blocks[name]

    def entry_block(self) -> BasicBlock:
        assert self.entry is not None, "function has no entry block"
        return self.blocks[self.entry]

    def cfg(self) -> CFG:
        return CFG(self)

    # -- whole-function queries ---------------------------------------------

    def instructions(self) -> Iterator:
        for block in self.blocks.values():
            yield from block.instrs

    def size(self) -> int:
        return sum(len(b) for b in self.blocks.values())

    def remove_unreachable_blocks(self) -> list[str]:
        """Drop blocks not reachable from the entry; return removed names."""
        assert self.entry is not None
        reachable: set[str] = set()
        stack = [self.entry]
        while stack:
            name = stack.pop()
            if name in reachable or name not in self.blocks:
                continue
            reachable.add(name)
            stack.extend(self.blocks[name].successors())
        removed = [name for name in self.blocks if name not in reachable]
        for name in removed:
            del self.blocks[name]
        if removed:
            self.version = next(_fn_version_counter)
        return removed

    def copy(self) -> "Function":
        """Deep copy with identical block names and register numbers."""
        clone = Function(self.name, list(self.params))
        for name, block in self.blocks.items():
            clone.blocks[name] = block.copy(name)
        clone.entry = self.entry
        clone.regs = self.regs.copy()
        clone._name_counter = self._name_counter
        clone.arena = self.arena
        return clone

    def __getstate__(self):
        # The arena handle is the process-global store: pickling it would
        # drag every encoded column across the process boundary (the
        # parallel formation driver ships Functions to workers).
        state = dict(self.__dict__)
        state.pop("arena", None)
        return state

    def __setstate__(self, state) -> None:
        # Versions are process-local; re-stamp on unpickle (see
        # BasicBlock.__setstate__) and re-bind the receiving process's
        # own backend selection.
        self.__dict__.update(state)
        self.version = next(_fn_version_counter)
        self.arena = _arena.STORE if _arena.ENABLED else None

    def __repr__(self) -> str:
        return f"<Function @{self.name} [{len(self.blocks)} blocks]>"


class Module:
    """A collection of functions; ``main`` is the conventional entry point."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: dict[str, Function] = {}

    def add_function(self, func: Function) -> Function:
        if func.name in self.functions:
            raise ValueError(f"duplicate function @{func.name}")
        self.functions[func.name] = func
        return func

    def function(self, name: str) -> Function:
        return self.functions[name]

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())

    def copy(self) -> "Module":
        clone = Module(self.name)
        for func in self:
            clone.add_function(func.copy())
        return clone

    def size(self) -> int:
        return sum(f.size() for f in self)

    def __repr__(self) -> str:
        return f"<Module {self.name} [{len(self.functions)} functions]>"
