"""Predicated RISC-like intermediate representation.

The IR is the substrate every other subsystem operates on: a module of
functions, each a CFG of basic blocks holding predicated instructions over
virtual registers.  See DESIGN.md section 5 for the predication model.
"""

from repro.ir.block import BasicBlock
from repro.ir.builder import FunctionBuilder, build_module
from repro.ir.function import CFG, Function, Module
from repro.ir.instruction import Instruction, Predicate
from repro.ir.opcodes import (
    BRANCH_OPS,
    COMMUTATIVE_OPS,
    INVERTED_TEST,
    MEMORY_OPS,
    OP_INFO,
    PURE_OPS,
    TEST_OPS,
    OpInfo,
    Opcode,
)
from repro.ir.dot import function_to_dot
from repro.ir.printer import cfg_summary, format_block, format_function, format_module
from repro.ir.textparse import (
    IRParseError,
    parse_function_text,
    parse_instruction,
    parse_module_text,
)
from repro.ir.verify import VerificationError, verify_function, verify_module

__all__ = [
    "BasicBlock",
    "BRANCH_OPS",
    "CFG",
    "COMMUTATIVE_OPS",
    "FunctionBuilder",
    "Function",
    "INVERTED_TEST",
    "Instruction",
    "MEMORY_OPS",
    "Module",
    "OP_INFO",
    "OpInfo",
    "Opcode",
    "PURE_OPS",
    "Predicate",
    "TEST_OPS",
    "VerificationError",
    "build_module",
    "cfg_summary",
    "format_block",
    "format_function",
    "format_module",
    "function_to_dot",
    "IRParseError",
    "parse_function_text",
    "parse_instruction",
    "parse_module_text",
    "verify_function",
    "verify_module",
]
