"""Textual rendering of IR modules, functions and blocks."""

from __future__ import annotations

from repro.ir.block import BasicBlock
from repro.ir.function import Function, Module


def format_block(block: BasicBlock, indent: str = "  ") -> str:
    lines = [f"{block.name}:"]
    for instr in block:
        lines.append(f"{indent}{instr!r}")
    return "\n".join(lines)


def format_function(func: Function) -> str:
    params = ", ".join(f"v{p}" for p in func.params)
    lines = [f"func @{func.name}({params}) {{"]
    # Entry first, remaining blocks in insertion order.
    names = list(func.blocks)
    if func.entry in names:
        names.remove(func.entry)
        names.insert(0, func.entry)
    for name in names:
        lines.append(format_block(func.blocks[name]))
    lines.append("}")
    return "\n".join(lines)


def format_module(mod: Module) -> str:
    return "\n\n".join(format_function(f) for f in mod)


def cfg_summary(func: Function) -> str:
    """One line per block: name, size, successor list."""
    lines = []
    for name, block in func.blocks.items():
        succs = ", ".join(block.successors()) or "-"
        marker = "*" if name == func.entry else " "
        lines.append(f"{marker}{name:24s} {len(block):4d} instrs -> {succs}")
    return "\n".join(lines)
