"""Evaluation semantics for binary operations.

Shared by the functional simulator (execution) and the optimizer
(constant folding) so the two can never disagree.
"""

from __future__ import annotations

from typing import Callable

from repro.ir.opcodes import Opcode


class EvaluationError(Exception):
    """Raised for undefined arithmetic (division by zero)."""


def int_div(a, b):
    """C-style division: floats divide exactly, ints truncate toward zero."""
    if isinstance(a, float) or isinstance(b, float):
        return a / b
    if b == 0:
        raise EvaluationError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def int_mod(a, b):
    if b == 0:
        raise EvaluationError("integer modulo by zero")
    return a - int_div(a, b) * b


EVAL_BINOP: dict[Opcode, Callable] = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.DIV: int_div,
    Opcode.MOD: int_mod,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: a << b,
    Opcode.SHR: lambda a, b: a >> b,
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
    Opcode.FDIV: lambda a, b: a / b,
    Opcode.TEQ: lambda a, b: 1 if a == b else 0,
    Opcode.TNE: lambda a, b: 1 if a != b else 0,
    Opcode.TLT: lambda a, b: 1 if a < b else 0,
    Opcode.TLE: lambda a, b: 1 if a <= b else 0,
    Opcode.TGT: lambda a, b: 1 if a > b else 0,
    Opcode.TGE: lambda a, b: 1 if a >= b else 0,
}
