"""A small construction DSL for building IR functions by hand.

Used by tests, the paper-figure examples, and anywhere a CFG is easier to
write directly than in the TL source language::

    fb = FunctionBuilder("main")
    fb.block("entry")
    i = fb.movi(0)
    fb.br("head")
    fb.block("head")
    c = fb.tlt(i, fb.movi(10))
    fb.br_cond(c, "body", "exit")
    ...
    func = fb.finish()
"""

from __future__ import annotations

from typing import Optional, Union

from repro.ir.block import BasicBlock
from repro.ir.function import Function, Module
from repro.ir.instruction import Instruction, Predicate
from repro.ir.opcodes import OP_INFO, Opcode

Operand = int  # virtual register number


class FunctionBuilder:
    """Builds a :class:`Function` block by block, in emission order."""

    def __init__(self, name: str, nparams: int = 0):
        self.func = Function(name, params=list(range(nparams)))
        self._current: Optional[BasicBlock] = None

    # -- blocks ----------------------------------------------------------

    def block(self, name: str, entry: bool = False) -> BasicBlock:
        """Create block ``name`` and make it the emission target."""
        blk = BasicBlock(name)
        self.func.add_block(blk, entry=entry)
        self._current = blk
        return blk

    def switch_to(self, name: str) -> BasicBlock:
        self._current = self.func.block(name)
        return self._current

    @property
    def current(self) -> BasicBlock:
        if self._current is None:
            raise RuntimeError("no current block; call block() first")
        return self._current

    # -- generic emission -------------------------------------------------

    def emit(self, instr: Instruction) -> Instruction:
        self.current.append(instr)
        for reg in instr.defs() + instr.uses():
            self.func.note_reg(reg)
        return instr

    def op(
        self,
        opcode: Opcode,
        *srcs: Operand,
        imm=None,
        pred: Optional[Predicate] = None,
    ) -> int:
        """Emit ``opcode`` and return the fresh destination register."""
        info = OP_INFO[opcode]
        if not info.has_dest:
            raise ValueError(f"{opcode} has no destination; use emit()")
        dest = self.func.new_reg()
        self.emit(Instruction(opcode, dest=dest, srcs=srcs, imm=imm, pred=pred))
        return dest

    # -- arithmetic conveniences ---------------------------------------

    def movi(self, value: Union[int, float], pred=None) -> int:
        return self.op(Opcode.MOVI, imm=value, pred=pred)

    def mov(self, src: Operand, pred=None) -> int:
        return self.op(Opcode.MOV, src, pred=pred)

    def mov_to(self, dest: Operand, src: Operand, pred=None) -> Instruction:
        """``dest = src`` into an *existing* register (loop variables)."""
        self.func.note_reg(dest)
        return self.emit(Instruction(Opcode.MOV, dest=dest, srcs=(src,), pred=pred))

    def movi_to(self, dest: Operand, value, pred=None) -> Instruction:
        self.func.note_reg(dest)
        return self.emit(Instruction(Opcode.MOVI, dest=dest, imm=value, pred=pred))

    def add(self, a, b, pred=None) -> int:
        return self.op(Opcode.ADD, a, b, pred=pred)

    def addi(self, a, value, pred=None) -> int:
        return self.op(Opcode.ADD, a, self.movi(value), pred=pred)

    def sub(self, a, b, pred=None) -> int:
        return self.op(Opcode.SUB, a, b, pred=pred)

    def mul(self, a, b, pred=None) -> int:
        return self.op(Opcode.MUL, a, b, pred=pred)

    def div(self, a, b, pred=None) -> int:
        return self.op(Opcode.DIV, a, b, pred=pred)

    def teq(self, a, b, pred=None) -> int:
        return self.op(Opcode.TEQ, a, b, pred=pred)

    def tne(self, a, b, pred=None) -> int:
        return self.op(Opcode.TNE, a, b, pred=pred)

    def tlt(self, a, b, pred=None) -> int:
        return self.op(Opcode.TLT, a, b, pred=pred)

    def tge(self, a, b, pred=None) -> int:
        return self.op(Opcode.TGE, a, b, pred=pred)

    def load(self, addr: Operand, offset: int = 0, pred=None) -> int:
        return self.op(Opcode.LOAD, addr, imm=offset, pred=pred)

    def store(self, addr: Operand, value: Operand, offset: int = 0, pred=None):
        return self.emit(
            Instruction(Opcode.STORE, srcs=(addr, value), imm=offset, pred=pred)
        )

    def call(self, callee: str, *args: Operand, pred=None) -> int:
        dest = self.func.new_reg()
        self.emit(
            Instruction(Opcode.CALL, dest=dest, srcs=args, callee=callee, pred=pred)
        )
        return dest

    # -- control flow -----------------------------------------------------

    def br(self, target: str, pred: Optional[Predicate] = None) -> Instruction:
        return self.emit(Instruction(Opcode.BR, target=target, pred=pred))

    def br_cond(self, cond: Operand, if_true: str, if_false: str) -> None:
        """The canonical conditional branch: two complementary predicated BRs."""
        self.br(if_true, pred=Predicate(cond, True))
        self.br(if_false, pred=Predicate(cond, False))

    def ret(self, value: Optional[Operand] = None, pred=None) -> Instruction:
        srcs = (value,) if value is not None else ()
        return self.emit(Instruction(Opcode.RET, srcs=srcs, pred=pred))

    # -- completion ---------------------------------------------------------

    def finish(self) -> Function:
        return self.func


def build_module(*functions: Function, name: str = "module") -> Module:
    mod = Module(name)
    for func in functions:
        mod.add_function(func)
    return mod
