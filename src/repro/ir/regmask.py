"""Register bitmask helpers — the dataflow engine's set algebra.

Virtual registers are small dense integers (``Function.new_reg`` hands
them out sequentially, and :func:`repro.ir.regdense.renumber_registers`
restores density for externally parsed IR), so a *set of registers* is
represented as a plain Python ``int`` with bit ``r`` set for register
``r``.  Union, intersection, difference and membership then cost one
arbitrary-precision integer operation — a handful of machine words for
real functions — instead of per-element hashing, and equality/hashing of
a whole set (the merge-trial memo key) is O(words) as well.

Conventions used throughout the analyses:

- the empty set is ``0``;
- ``mask_of(iterable)`` builds a mask, ``regs_of(mask)`` materializes the
  ``set[int]`` view (cold paths and tests only);
- membership is ``mask >> reg & 1`` inline on hot paths, or :func:`has`;
- cardinality is ``mask.bit_count()`` (Python >= 3.10; CI exercises both
  3.11 and 3.12).
"""

from __future__ import annotations

from typing import Iterable, Iterator


def mask_of(regs: Iterable[int]) -> int:
    """Bitmask with one bit set per register in ``regs``."""
    mask = 0
    for reg in regs:
        mask |= 1 << reg
    return mask


def has(mask: int, reg: int) -> bool:
    """Membership test (hot paths inline ``mask >> reg & 1`` directly)."""
    return bool(mask >> reg & 1)


def bits(mask: int) -> Iterator[int]:
    """Iterate the set bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def regs_of(mask: int) -> set[int]:
    """The ``set[int]`` view of a mask (for display, tests, cold paths)."""
    return set(bits(mask))


def as_mask(live: "int | Iterable[int]") -> int:
    """Normalize a caller-supplied register collection to a mask.

    The dataflow core works in masks, but external callers (and the test
    suite) may still hand in ``set``/``frozenset``/lists of registers;
    accepting both keeps the public API stable while the hot paths pay
    only an ``isinstance`` check.
    """
    if isinstance(live, int):
        return live
    return mask_of(live)
