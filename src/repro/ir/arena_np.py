"""Vectorized numpy kernels over the arena columns (the ``numpy`` backend).

The struct-of-arrays arena (:mod:`repro.ir.arena`) stores every encoded
block as flat ``array('q')`` columns.  Pure CPython consumers still pay
an int box per subscript; this module lifts the hot loops into numpy:

- :class:`Mirrors` — zero-copy ``np.frombuffer`` int64 views over the
  ``op``/``dest``/``pred`` columns and the CSR ``src_off``/``src_pool``
  operand table.  A live mirror *pins* the column buffers (CPython
  refuses to resize an exporting ``array``), so the arena drops its
  cached mirror before every mutation and readers rebuild lazily; the
  epoch/extent stamp makes staleness structurally impossible.
- estimator kernels — consumer fanout via one ``np.bincount`` over the
  CSR pool, for a single block, a concatenation of extents (merged-
  candidate pricing), or a whole batch of blocks in one call.
- a dead-code-elimination mark kernel that reproduces the backward
  liveness scan exactly via a sorted-event fixpoint.
- a GVN eligibility prefilter over the opcode/dest/pred columns.
- int-indexed CFG kernels (reverse postorder, Cooper-Harvey-Kennedy
  immediate dominators, Euler-tour dominance intervals, vectorized
  back-edge detection, Tarjan SCCs) that replace the string-dict graph
  walks rebuilt on every non-trivial commit.

Every kernel is *exact*: it computes the same value as the flat-loop
path it shadows, bit for bit, so backend selection can never change a
formation decision.  The module imports numpy unconditionally — callers
gate on ``arena.NUMPY``, which is only set after a guarded probe.
"""

from __future__ import annotations

from itertools import accumulate as _accumulate

import numpy as np

from repro.ir.arena import (
    F_DCE_REMOVABLE,
    F_PURE,
    OP_FLAGS,
    OP_MOV,
    OP_MOVI,
)

_I64 = np.int64
_EMPTY = np.empty(0, dtype=_I64)

#: ``arena.OP_FLAGS`` as an ndarray, indexable by an opcode-id column.
OP_FLAGS_NP = np.array(OP_FLAGS, dtype=_I64)


# ---------------------------------------------------------------------------
# Zero-copy column mirrors
# ---------------------------------------------------------------------------


class Mirrors:
    """Zero-copy int64 ndarray views of one arena's columns.

    Built by :meth:`repro.ir.arena.Arena.mirrors`; the stamp fields let
    the arena assert freshness (a mirror surviving a mutation is
    impossible — the buffers are pinned while it exists — but the stamp
    turns that invariant into a checked one).
    """

    __slots__ = (
        "epoch", "n_slots", "n_pool",
        "op", "dest", "pred", "src_off", "src_pool",
    )

    def __init__(self, store) -> None:
        self.epoch = store.epoch
        self.n_slots = len(store.op)
        self.n_pool = len(store.src_pool)
        self.op = self._wrap(store.op)
        self.dest = self._wrap(store.dest)
        self.pred = self._wrap(store.pred)
        self.src_off = self._wrap(store.src_off)
        self.src_pool = self._wrap(store.src_pool)

    @staticmethod
    def _wrap(column) -> np.ndarray:
        if len(column) == 0:
            # frombuffer would still pin a zero-length export; an owned
            # empty array keeps the column free to grow.
            return _EMPTY
        return np.frombuffer(column, dtype=_I64)


# ---------------------------------------------------------------------------
# Register-mask <-> bit-array conversion
# ---------------------------------------------------------------------------


def mask_to_bits(mask: int, size: int) -> np.ndarray:
    """A register bitmask as a bool array of length ``size`` (cropped)."""
    if size <= 0:
        return np.zeros(0, dtype=np.bool_)
    nbytes = (size + 7) >> 3
    needed = (mask.bit_length() + 7) >> 3
    data = mask.to_bytes(max(nbytes, needed), "little")
    bits = np.unpackbits(np.frombuffer(data, np.uint8), bitorder="little")
    return bits[:size].view(np.bool_)


def bits_to_mask(bits: np.ndarray) -> int:
    """Inverse of :func:`mask_to_bits` (bool array -> int bitmask)."""
    if bits.size == 0:
        return 0
    packed = np.packbits(bits, bitorder="little")
    return int.from_bytes(packed.tobytes(), "little")


# ---------------------------------------------------------------------------
# Estimator kernels
# ---------------------------------------------------------------------------


def _extent_consumers(m: Mirrors, base: int, n: int) -> np.ndarray:
    """All consumed registers of one extent: CSR sources + predicate regs."""
    off = m.src_off
    pool = m.src_pool[int(off[base]):int(off[base + n])]
    preds = m.pred[base:base + n]
    pr = preds[preds >= 0]
    if pr.size:
        return np.concatenate((pool, pr >> 1))
    return pool


def consumer_fanout(
    m: Mirrors, extents, width: int, remat_mask: int
) -> int:
    """Fanout instruction count over one or more concatenated extents.

    Matches the flat-loop estimator exactly: every register with more
    than ``width`` consumers (source reads plus predicate reads) charges
    ``count - width`` fanout movs, except rematerializable registers.
    Passing several ``(base, n)`` extents prices their concatenation —
    the merged-candidate estimate — without materializing a merged block.
    """
    parts = [_extent_consumers(m, base, n) for base, n in extents]
    regs = parts[0] if len(parts) == 1 else np.concatenate(parts)
    if regs.size == 0:
        return 0
    counts = np.bincount(regs)
    extra = counts - width
    hot = extra > 0
    if not hot.any():
        return 0
    if remat_mask:
        hot &= ~mask_to_bits(remat_mask, counts.size)
    return int(extra[hot].sum())


#: Upper bound on the scratch bincount (blocks x registers) the batched
#: estimate-many path may allocate before falling back to per-block calls.
_BATCH_CELLS = 1 << 22


def fanout_many(m: Mirrors, extents, width: int, remat_masks) -> list[int]:
    """Per-block consumer fanout for a batch of extents in one bincount.

    Registers are keyed as ``block_index * stride + reg`` so one
    ``np.bincount`` prices the whole batch; oversized batches degrade to
    the per-block kernel (identical results either way).
    """
    nb = len(extents)
    if nb == 0:
        return []
    parts = [_extent_consumers(m, base, n) for base, n in extents]
    stride = 1 + max((int(p.max()) for p in parts if p.size), default=0)
    if nb * stride > _BATCH_CELLS:
        return [
            consumer_fanout(m, (extents[i],), width, remat_masks[i])
            for i in range(nb)
        ]
    keys = [p + i * stride for i, p in enumerate(parts) if p.size]
    if not keys:
        return [0] * nb
    counts = np.bincount(
        np.concatenate(keys), minlength=nb * stride
    ).reshape(nb, stride)
    extra = counts - width
    hot = extra > 0
    for i in range(nb):
        if remat_masks[i] and hot[i].any():
            hot[i] &= ~mask_to_bits(remat_masks[i], stride)
    return [int(extra[i][hot[i]].sum()) for i in range(nb)]


# ---------------------------------------------------------------------------
# Exposure / kill mask construction
# ---------------------------------------------------------------------------


def exposed_kill_masks(m: Mirrors, base: int, n: int):
    """``(exposed, kill)`` masks of an extent with no predicated writes.

    Valid whenever no instruction both carries a predicate and writes a
    register (returns ``None`` otherwise): every write then kills, so a
    register is upward-exposed iff its first read — source reads *and*
    predicate reads — precedes its first write, which vectorizes as a
    first-position comparison.  Reads of an instruction precede its own
    write, hence the non-strict comparison.
    """
    if n == 0:
        return 0, 0
    sl = slice(base, base + n)
    dests = m.dest[sl]
    preds = m.pred[sl]
    dmask = dests >= 0
    if bool((dmask & (preds >= 0)).any()):
        return None
    off = m.src_off[base:base + n + 1]
    off0 = int(off[0])
    pool = m.src_pool[off0:int(off[-1])]
    use_pos = np.repeat(np.arange(n, dtype=_I64), np.diff(off))
    use_reg = pool
    ppos = np.flatnonzero(preds >= 0)
    if ppos.size:
        use_reg = np.concatenate((use_reg, preds[ppos] >> 1))
        use_pos = np.concatenate((use_pos, ppos))
    dpos = np.flatnonzero(dmask)
    dreg = dests[dpos]
    maxreg = 1 + max(
        int(use_reg.max()) if use_reg.size else -1,
        int(dreg.max()) if dreg.size else -1,
    )
    if maxreg <= 0:
        return 0, 0
    first_def = np.full(maxreg, n, dtype=_I64)
    np.minimum.at(first_def, dreg, dpos)
    exposed = np.zeros(maxreg, dtype=np.bool_)
    if use_reg.size:
        exposed[use_reg[use_pos <= first_def[use_reg]]] = True
    kill = np.zeros(maxreg, dtype=np.bool_)
    kill[dreg] = True
    return bits_to_mask(exposed), bits_to_mask(kill)


# ---------------------------------------------------------------------------
# Dead-code elimination mark kernel
# ---------------------------------------------------------------------------


def _next_event(keys, probe, c_base, stride):
    """Per-probe position of the first key in ``(probe, base+stride)``.

    ``keys`` is sorted ``reg * stride + pos``; returns block positions,
    with ``stride`` as the "no such event" sentinel.
    """
    if keys.size == 0:
        return np.full(probe.shape, stride, dtype=_I64)
    i = np.searchsorted(keys, probe, side="right")
    k = keys[np.minimum(i, keys.size - 1)]
    valid = (i < keys.size) & (k < c_base + stride)
    return np.where(valid, k - c_base, stride)


def dce_dead_indices(m: Mirrors, base: int, n: int, live_out: int):
    """Block-relative indices the backward DCE scan would remove.

    The scalar scan walks backwards keeping a live mask; its unique
    fixpoint is recovered here by iterating a vectorized observation
    test: an alive candidate definition is *observed* if an alive read
    of its register follows it before any alive unpredicated write, or
    if it reaches the block exit live-out.  Each round only retires
    candidates that the scalar scan provably retires (kills and uses
    from retired instructions stop counting next round), and the
    fixpoint equals the scalar result exactly.  Almost every call
    terminates in one round (nothing dead) or two.
    """
    if n == 0:
        return _EMPTY
    sl = slice(base, base + n)
    ops = m.op[sl]
    dests = m.dest[sl]
    preds = m.pred[sl]
    cand = (dests >= 0) & ((OP_FLAGS_NP[ops] & F_DCE_REMOVABLE) != 0)
    if not cand.any():
        return _EMPTY
    off = m.src_off[base:base + n + 1]
    off0 = int(off[0])
    pool = m.src_pool[off0:int(off[-1])]
    slot_of_src = np.repeat(np.arange(n, dtype=_I64), np.diff(off))
    pred_pos = np.flatnonzero(preds >= 0)
    pred_reg = preds[pred_pos] >> 1
    maxreg = 1 + max(
        int(pool.max()) if pool.size else -1,
        int(pred_reg.max()) if pred_reg.size else -1,
        int(dests.max()),
    )
    out_bits = mask_to_bits(live_out, maxreg)
    stride = n + 1  # position sentinel: stride-1 < stride = "never"
    alive = np.ones(n, dtype=np.bool_)
    unpred_def = (dests >= 0) & (preds < 0)
    while True:
        src_keep = alive[slot_of_src]
        u_reg = pool[src_keep]
        u_pos = slot_of_src[src_keep]
        pk = alive[pred_pos]
        if pk.any():
            u_reg = np.concatenate((u_reg, pred_reg[pk]))
            u_pos = np.concatenate((u_pos, pred_pos[pk]))
        kmask = alive & unpred_def
        k_pos = np.flatnonzero(kmask)
        k_reg = dests[kmask]
        u_keys = np.sort(u_reg * stride + u_pos)
        k_keys = np.sort(k_reg * stride + k_pos)
        c_pos = np.flatnonzero(alive & cand)
        c_reg = dests[c_pos]
        c_base = c_reg * stride
        probe = c_base + c_pos
        # First use / first unpredicated write of the register strictly
        # after the candidate (``stride`` = none before the block exit).
        next_use = _next_event(u_keys, probe, c_base, stride)
        next_kill = _next_event(k_keys, probe, c_base, stride)
        observed = (next_use <= next_kill) & (next_use < stride)
        observed |= (next_kill == stride) & out_bits[c_reg]
        newly_dead = c_pos[~observed]
        if newly_dead.size == 0:
            break
        alive[newly_dead] = False
    return np.flatnonzero(~alive)


# ---------------------------------------------------------------------------
# GVN eligibility prefilter
# ---------------------------------------------------------------------------


def gvn_candidates(
    m: Mirrors, base: int, n: int, def_counts: np.ndarray
) -> np.ndarray:
    """Block-relative slots eligible for the GVN table walk.

    Eligible = unpredicated pure non-copy with a destination, every
    source single-def in the function (``def_counts`` is the per-register
    definition-count array).  The expensive inner loop then only visits
    the surviving slots.
    """
    if n == 0:
        return _EMPTY
    sl = slice(base, base + n)
    ops = m.op[sl]
    elig = (
        (m.dest[sl] >= 0)
        & (m.pred[sl] < 0)
        & ((OP_FLAGS_NP[ops] & F_PURE) != 0)
        & (ops != OP_MOV)
        & (ops != OP_MOVI)
    )
    if not elig.any():
        return _EMPTY
    off = m.src_off[base:base + n + 1]
    off0 = int(off[0])
    pool = m.src_pool[off0:int(off[-1])]
    if pool.size:
        multi = np.concatenate(
            ([0], np.cumsum(def_counts[pool] > 1))
        )
        elig &= (multi[off[1:] - off0] - multi[off[:-1] - off0]) == 0
    return np.flatnonzero(elig)


def def_count_array(func, store):
    """``(counts, mirror)``: per-register definition counts over a whole
    function, sized to cover every register the function reads or writes.

    Encodes every block *before* taking the mirror — ``view_of`` may
    append to the columns, which a live mirror would pin.
    """
    extents = []
    for block in func.blocks.values():
        view = store.view_of(block)
        if view.n:
            extents.append((view.base, view.n))
    m = store.mirrors()
    dest_parts = []
    maxreg = 0
    for base, n in extents:
        dest_parts.append(m.dest[base:base + n])
        off = m.src_off
        pool = m.src_pool[int(off[base]):int(off[base + n])]
        if pool.size:
            maxreg = max(maxreg, int(pool.max()) + 1)
    if not dest_parts:
        return np.zeros(max(maxreg, 1), dtype=_I64), m
    dests = np.concatenate(dest_parts)
    dests = dests[dests >= 0]
    if dests.size:
        maxreg = max(maxreg, int(dests.max()) + 1)
    return np.bincount(dests, minlength=max(maxreg, 1)), m


# ---------------------------------------------------------------------------
# Int-indexed CFG kernels
# ---------------------------------------------------------------------------


class FlatCFG:
    """One CFG snapshot interned to dense ints with CSR adjacency.

    Built once per dominator/loop rebuild; the DFS, CHK, Euler-tour and
    back-edge kernels below all run over these int arrays instead of the
    string-keyed dicts.  ``order`` is the reverse postorder as node ids;
    it reproduces the dict-based DFS exactly (same stack discipline, same
    successor visit order), so every consumer of RPO sees identical
    sequences under either backend.
    """

    __slots__ = (
        "names", "index", "adj", "adj_off", "order", "pos_of", "succs_src"
    )

    def __init__(self, entry: str, succs: dict) -> None:
        self.succs_src = succs  # identity token for consumers of adj
        names = list(succs)
        index = {name: i for i, name in enumerate(names)}
        self.names = names
        self.index = index
        index_get = index.get
        # Listcomp adjacency: -1 marks a successor outside the node set.
        # Consumers MUST guard ``j >= 0`` before indexing with it —
        # ``pos_of[-1]`` would silently alias the last entry.
        adj = [index_get(s, -1) for name in names for s in succs[name]]
        adj_off = list(
            _accumulate((len(succs[name]) for name in names), initial=0)
        )
        self.adj = adj
        self.adj_off = adj_off
        nn = len(names)
        entry_i = index[entry]
        visited = bytearray(nn)
        visited[entry_i] = 1
        post: list[int] = []
        stack = [entry_i]
        ptr = [adj_off[entry_i]]
        while stack:
            node = stack[-1]
            p = ptr[-1]
            end = adj_off[node + 1]
            advanced = False
            while p < end:
                nxt = adj[p]
                p += 1
                if nxt >= 0 and not visited[nxt]:
                    visited[nxt] = 1
                    ptr[-1] = p
                    stack.append(nxt)
                    ptr.append(adj_off[nxt])
                    advanced = True
                    break
            if not advanced:
                ptr[-1] = p
                post.append(node)
                stack.pop()
                ptr.pop()
        post.reverse()
        self.order = post  # node ids in reverse postorder
        pos_of = [-1] * nn
        for p, node in enumerate(post):
            pos_of[node] = p
        self.pos_of = pos_of

    def rpo_names(self) -> list[str]:
        names = self.names
        return [names[node] for node in self.order]


def rpo_names(entry: str, succs: dict):
    """Reverse postorder over interned ints; None if ``entry`` is absent."""
    if entry not in succs:
        return None
    return FlatCFG(entry, succs).rpo_names()


class DomFacts:
    """Immediate dominators + Euler-tour intervals over a :class:`FlatCFG`.

    ``idom_pos[p]`` is the rpo position of the immediate dominator of the
    node at rpo position ``p`` (position 0 = entry, its own idom; -1 for
    the degenerate never-assigned case).  ``tin``/``tout`` are preorder
    entry stamps and max-descendant stamps over the dominator tree, so
    *a dominates b* is the O(1) interval test ``tin[a] <= tin[b] <=
    tout[a]``.
    """

    __slots__ = ("flat", "idom_pos", "tin", "tout", "e_src", "e_dst")

    def __init__(self, flat: FlatCFG) -> None:
        self.flat = flat
        order = flat.order
        m = len(order)
        # Edge arrays in (rpo-of-src, successor-list order): gather the
        # CSR rows of the rpo sequence with one repeat/cumsum pass, then
        # drop edges whose endpoint is outside the set (-1 sentinel —
        # masked BEFORE indexing pos_of, which -1 would alias) or
        # unreachable (pos -1).  This ordering is exactly the scalar
        # discovery order, so back_edges() below needs no re-sorting.
        adj_np = np.asarray(flat.adj, dtype=_I64)
        off_np = np.asarray(flat.adj_off, dtype=_I64)
        pos_np = np.asarray(flat.pos_of, dtype=_I64)
        order_np = np.asarray(order, dtype=_I64)
        if m and adj_np.size:
            starts = off_np[order_np]
            lens = off_np[order_np + 1] - starts
            total = int(lens.sum())
        else:
            total = 0
        if total:
            idx = (
                np.repeat(starts + lens - np.cumsum(lens), lens)
                + np.arange(total, dtype=_I64)
            )
            dst_ids = adj_np[idx]
            e_src = np.repeat(np.arange(m, dtype=_I64), lens)
            valid = dst_ids >= 0
            e_src = e_src[valid]
            e_dst = pos_np[dst_ids[valid]]
            reach = e_dst >= 0
            e_src = e_src[reach]
            e_dst = e_dst[reach]
        else:
            e_src = _EMPTY
            e_dst = _EMPTY
        self.e_src = e_src
        self.e_dst = e_dst
        # CHK pred lists from the edge arrays: stable sort by dst keeps
        # srcs ascending within each dst — identical to the append-in-rpo
        # order the scalar build produces.
        if e_src.size:
            by_dst = np.argsort(e_dst, kind="stable")
            pred_src = e_src[by_dst].tolist()
            bounds = np.searchsorted(
                e_dst[by_dst], np.arange(m + 1, dtype=_I64)
            ).tolist()
        else:
            pred_src = []
            bounds = [0] * (m + 1)
        idom = [-1] * max(m, 1)
        idom[0] = 0
        changed = m > 1
        while changed:
            changed = False
            for p in range(1, m):
                best = -1
                for q in pred_src[bounds[p]:bounds[p + 1]]:
                    if idom[q] < 0:
                        continue
                    if best < 0:
                        best = q
                        continue
                    a, b = q, best
                    while a != b:
                        while a > b:
                            a = idom[a]
                        while b > a:
                            b = idom[b]
                    best = a
                if best >= 0 and idom[p] != best:
                    idom[p] = best
                    changed = True
        self.idom_pos = idom
        # Preorder intervals of the dominator tree without an explicit
        # tour: ``idom[p] < p`` (a dominator precedes its node in rpo),
        # so a reverse sweep accumulates subtree sizes and a forward
        # sweep hands out preorder slots — children are claimed in rpo
        # order, which is exactly the child order the stack tour (and the
        # dict path's insertion-ordered children lists) would visit.
        # tin = preorder index, tout = tin + size - 1 = max descendant
        # stamp: identical values to the tour's entry/exit clocks.
        tin = [-1] * m
        tout = [-1] * m
        if m:
            size = [1] * m
            for p in range(m - 1, 0, -1):
                par = idom[p]
                if par >= 0:
                    size[par] += size[p]
            cursor = [0] * m  # next free preorder slot inside each node
            tin[0] = 0
            tout[0] = size[0] - 1
            cursor[0] = 1
            for p in range(1, m):
                par = idom[p]
                if par < 0 or tin[par] < 0:
                    # Detached subtree (never-assigned idom): the tour
                    # never reaches it, so the whole subtree keeps -1.
                    continue
                t = cursor[par]
                tin[p] = t
                tout[p] = t + size[p] - 1
                cursor[p] = t + 1
                cursor[par] = t + size[p]
        self.tin = tin
        self.tout = tout

    # -- dict-shaped views (same structures the scalar path builds) -----

    def idom_dict(self, entry: str) -> dict:
        flat = self.flat
        names = flat.names
        order = flat.order
        idom_pos = self.idom_pos
        idom: dict = {entry: None}
        for p in range(1, len(order)):
            q = idom_pos[p]
            if q >= 0:
                idom[names[order[p]]] = names[order[q]]
        return idom

    def back_edges(self) -> list[tuple[str, str]]:
        """Edges ``src -> dst`` where dst dominates src, in the scalar
        discovery order (rpo of src, successor-list order within)."""
        flat = self.flat
        order = flat.order
        src = self.e_src
        dst = self.e_dst
        if not src.size:
            return []
        tin = np.array(self.tin, dtype=_I64)
        tout = np.array(self.tout, dtype=_I64)
        ok = (tin[dst] >= 0) & (tin[src] >= 0)
        back = (src == dst) | (
            ok & (tin[dst] <= tin[src]) & (tin[src] <= tout[dst])
        )
        names = flat.names
        return [
            (names[order[int(src[i])]], names[order[int(dst[i])]])
            for i in np.flatnonzero(back)
        ]


def dom_facts(entry: str, succs: dict):
    """Build :class:`DomFacts` for a CFG; None if ``entry`` is absent."""
    if entry not in succs:
        return None
    return DomFacts(FlatCFG(entry, succs))


# ---------------------------------------------------------------------------
# Strongly connected components (int-indexed Tarjan)
# ---------------------------------------------------------------------------


def sccs_flat(nodes: list[str], succs: dict) -> list[list[str]]:
    """``liveness._tarjan_sccs`` over interned ints: same roots order,
    same successor filtering, same successors-first emission."""
    index = {name: i for i, name in enumerate(nodes)}
    nn = len(nodes)
    index_get = index.get
    succs_get = succs.get
    # -1 marks a successor outside ``nodes`` (the restricted-refresh
    # case); the DFS below skips it before any indexing.
    adj = [
        index_get(s, -1) for name in nodes for s in succs_get(name, ())
    ]
    adj_off = list(
        _accumulate((len(succs_get(name, ())) for name in nodes), initial=0)
    )
    number = [-1] * nn   # Tarjan index
    lowlink = [0] * nn
    on_stack = bytearray(nn)
    stack: list[int] = []
    sccs: list[list[str]] = []
    counter = 0
    for root in range(nn):
        if number[root] >= 0:
            continue
        work = [root]
        ptr = [adj_off[root]]
        number[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = 1
        while work:
            node = work[-1]
            p = ptr[-1]
            end = adj_off[node + 1]
            advanced = False
            while p < end:
                nxt = adj[p]
                p += 1
                if nxt < 0:
                    continue
                if number[nxt] < 0:
                    ptr[-1] = p
                    number[nxt] = lowlink[nxt] = counter
                    counter += 1
                    stack.append(nxt)
                    on_stack[nxt] = 1
                    work.append(nxt)
                    ptr.append(adj_off[nxt])
                    advanced = True
                    break
                if on_stack[nxt] and number[nxt] < lowlink[node]:
                    lowlink[node] = number[nxt]
            if advanced:
                continue
            ptr[-1] = p
            work.pop()
            ptr.pop()
            if lowlink[node] == number[node]:
                comp = []
                while True:
                    member = stack.pop()
                    on_stack[member] = 0
                    comp.append(nodes[member])
                    if member == node:
                        break
                sccs.append(comp)
            if work:
                parent = work[-1]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
    return sccs
