"""Graphviz DOT export of control-flow graphs.

Handy for reading formation results: blocks are shaded by how full they
are relative to the TRIPS 128-instruction format, loop back edges are
dashed, and edge labels carry the branch predicate.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.loops import LoopForest
from repro.ir.function import Function
from repro.ir.opcodes import Opcode


def _shade(fraction: float) -> str:
    """Gray level: empty blocks white, full blocks dark."""
    level = max(0, min(9, int(10 - fraction * 7)))
    return f"gray{level * 10 or 10}"


def function_to_dot(
    func: Function,
    slot_size: int = 128,
    name: Optional[str] = None,
) -> str:
    """Render ``func``'s CFG as a DOT digraph string."""
    forest = LoopForest(func)
    lines = [f'digraph "{name or func.name}" {{',
             '  node [shape=box, style=filled, fontname="monospace"];']
    for block_name, block in func.blocks.items():
        fraction = min(len(block) / slot_size, 1.0)
        label = f"{block_name}\\n{len(block)} instrs"
        entry = ", penwidth=2" if block_name == func.entry else ""
        lines.append(
            f'  "{block_name}" [label="{label}", '
            f'fillcolor={_shade(fraction)}{entry}];'
        )
    for block_name, block in func.blocks.items():
        for instr in block.instrs:
            if instr.op is not Opcode.BR or instr.target is None:
                continue
            attrs = []
            if instr.pred is not None:
                mark = "" if instr.pred.sense else "!"
                attrs.append(f'label="{mark}v{instr.pred.reg}"')
            if forest.is_back_edge(block_name, instr.target):
                attrs.append("style=dashed")
            attr_text = f" [{', '.join(attrs)}]" if attrs else ""
            lines.append(f'  "{block_name}" -> "{instr.target}"{attr_text};')
        if block.has_return():
            lines.append(
                f'  "{block_name}" -> "return" [style=dotted];'
            )
    if any(b.has_return() for b in func.blocks.values()):
        lines.append('  "return" [shape=ellipse, fillcolor=white];')
    lines.append("}")
    return "\n".join(lines)
