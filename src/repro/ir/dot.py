"""Graphviz DOT export of control-flow graphs.

Handy for reading formation results: blocks are shaded by how full they
are relative to the TRIPS 128-instruction format, loop back edges are
dashed, and edge labels carry the branch predicate.

With a ``provenance`` map (see :func:`merge_provenance`, built from the
accept events of a formation trace) hyperblocks are rendered as striped
nodes — one colored cell per originating basic block, in merge order —
so a decision-drift report can point at a visual before/after of which
blocks each hyperblock absorbed.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.loops import LoopForest
from repro.ir.function import Function
from repro.ir.opcodes import Opcode

#: ColorBrewer Set3: 12 light, print-safe fills for provenance stripes.
#: Origins beyond 12 wrap around — the stripes still show *structure*
#: (how many constituents, in what order) even when colors repeat.
PROVENANCE_PALETTE = (
    "#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3", "#fdb462",
    "#b3de69", "#fccde5", "#d9d9d9", "#bc80bd", "#ccebc5", "#ffed6f",
)


def _shade(fraction: float) -> str:
    """Gray level: empty blocks white, full blocks dark."""
    level = max(0, min(9, int(10 - fraction * 7)))
    return f"gray{level * 10 or 10}"


def merge_provenance(trace, function: Optional[str] = None) -> dict[str, list[str]]:
    """Per-hyperblock ordered origin list, from a trace's accept events.

    ``trace`` only needs an ``events`` sequence (a
    :class:`repro.obs.trace.FormationTrace` qualifies); ``function``
    restricts the walk to one function's events.  Every block starts as
    its own single origin; each accepted merge extends the hyperblock's
    origin chain with the absorbed target's chain at that moment (an
    ``unroll`` appends the hyperblock's own seed again — the body was
    replicated, not absorbed from elsewhere).
    """
    origins: dict[str, list[str]] = {}
    for event in trace.events:
        if event.name != "accept":
            continue
        attrs = event.attrs
        if function is not None and attrs.get("function") != function:
            continue
        hb, target = attrs.get("hb"), attrs.get("target")
        if hb is None or target is None:
            continue
        chain = origins.setdefault(hb, [hb])
        if attrs.get("kind") == "unroll":
            chain.append(hb)
        else:
            chain.extend(origins.get(target, [target]))
    return origins


def _provenance_label(
    block_name: str, size: int, chain: list[str], color_of: dict[str, str]
) -> str:
    """HTML-like table label: header row + one colored cell per origin."""
    cells = "".join(
        f'<td bgcolor="{color_of[origin]}" title="{origin}"> </td>'
        for origin in chain
    )
    return (
        '<<table border="0" cellborder="1" cellspacing="0">'
        f'<tr><td colspan="{len(chain)}">{block_name}<br/>'
        f"{size} instrs, {len(chain)} origins</td></tr>"
        f"<tr>{cells}</tr></table>>"
    )


def function_to_dot(
    func: Function,
    slot_size: int = 128,
    name: Optional[str] = None,
    provenance: Optional[dict[str, list[str]]] = None,
) -> str:
    """Render ``func``'s CFG as a DOT digraph string.

    ``provenance`` (from :func:`merge_provenance`) switches hyperblocks
    that absorbed other blocks to striped table labels, one colored cell
    per originating basic block in merge order.
    """
    forest = LoopForest(func)
    lines = [f'digraph "{name or func.name}" {{',
             '  node [shape=box, style=filled, fontname="monospace"];']
    color_of: dict[str, str] = {}
    if provenance:
        every_origin = sorted(
            {origin for chain in provenance.values() for origin in chain}
        )
        color_of = {
            origin: PROVENANCE_PALETTE[i % len(PROVENANCE_PALETTE)]
            for i, origin in enumerate(every_origin)
        }
    for block_name, block in func.blocks.items():
        fraction = min(len(block) / slot_size, 1.0)
        entry = ", penwidth=2" if block_name == func.entry else ""
        chain = (provenance or {}).get(block_name)
        if chain and len(chain) > 1:
            label = _provenance_label(
                block_name, len(block), chain, color_of
            )
            lines.append(
                f'  "{block_name}" [shape=plain, label={label}{entry}];'
            )
            continue
        label = f"{block_name}\\n{len(block)} instrs"
        lines.append(
            f'  "{block_name}" [label="{label}", '
            f'fillcolor={_shade(fraction)}{entry}];'
        )
    for block_name, block in func.blocks.items():
        for instr in block.instrs:
            if instr.op is not Opcode.BR or instr.target is None:
                continue
            attrs = []
            if instr.pred is not None:
                mark = "" if instr.pred.sense else "!"
                attrs.append(f'label="{mark}v{instr.pred.reg}"')
            if forest.is_back_edge(block_name, instr.target):
                attrs.append("style=dashed")
            attr_text = f" [{', '.join(attrs)}]" if attrs else ""
            lines.append(f'  "{block_name}" -> "{instr.target}"{attr_text};')
        if block.has_return():
            lines.append(
                f'  "{block_name}" -> "return" [style=dotted];'
            )
    if any(b.has_return() for b in func.blocks.values()):
        lines.append('  "return" [shape=ellipse, fillcolor=white];')
    lines.append("}")
    return "\n".join(lines)
