"""Parser for the textual IR form produced by :mod:`repro.ir.printer`.

Round-tripping ``format_function`` output makes IR dumps usable as test
fixtures and lets transformed programs be saved and reloaded.  The grammar
is exactly what ``Instruction.__repr__`` emits::

    func @name(v0, v1) {
    block:
      v2 = add v0, v1
      store v2, v0, 4
      br target if !v2
      ret v2
    }
"""

from __future__ import annotations

import re
from typing import Optional

from repro.ir.block import BasicBlock
from repro.ir.function import Function, Module
from repro.ir.instruction import Instruction, Predicate
from repro.ir.opcodes import Opcode

_FUNC_RE = re.compile(r"func @(\w+)\(([^)]*)\)\s*\{")
_BLOCK_RE = re.compile(r"^(\S+):$")
_REG_RE = re.compile(r"^v(\d+)$")

_OPCODES = {op.value: op for op in Opcode}


class IRParseError(Exception):
    """Raised on malformed textual IR."""


def _parse_operand(text: str):
    """Classify one operand: register, immediate, callee, or target."""
    text = text.strip()
    match = _REG_RE.match(text)
    if match:
        return ("reg", int(match.group(1)))
    if text.startswith("@"):
        return ("callee", text[1:])
    try:
        return ("imm", int(text))
    except ValueError:
        pass
    try:
        return ("imm", float(text))
    except ValueError:
        pass
    return ("target", text)


def parse_instruction(line: str) -> Instruction:
    """Parse one instruction line (without indentation)."""
    text = line.strip()
    pred: Optional[Predicate] = None
    if " if " in text:
        text, _, guard = text.rpartition(" if ")
        guard = guard.strip()
        sense = not guard.startswith("!")
        match = _REG_RE.match(guard.lstrip("!"))
        if not match:
            raise IRParseError(f"bad predicate {guard!r}")
        pred = Predicate(int(match.group(1)), sense)

    dest: Optional[int] = None
    if " = " in text:
        dest_text, _, text = text.partition(" = ")
        match = _REG_RE.match(dest_text.strip())
        if not match:
            raise IRParseError(f"bad destination {dest_text!r}")
        dest = int(match.group(1))

    parts = text.strip().split(None, 1)
    if not parts:
        raise IRParseError(f"empty instruction in {line!r}")
    opname = parts[0]
    op = _OPCODES.get(opname)
    if op is None:
        raise IRParseError(f"unknown opcode {opname!r}")

    srcs: list[int] = []
    imm = None
    target = None
    callee = None
    if len(parts) > 1:
        for raw in parts[1].split(","):
            kind, value = _parse_operand(raw)
            if kind == "reg":
                srcs.append(value)
            elif kind == "imm":
                imm = value
            elif kind == "callee":
                callee = value
            else:
                target = value
    return Instruction(
        op, dest=dest, srcs=srcs, imm=imm, target=target, callee=callee,
        pred=pred,
    )


def parse_function_text(text: str) -> Function:
    """Parse one ``func @name(...) { ... }`` body."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise IRParseError("empty function text")
    header = _FUNC_RE.match(lines[0].strip())
    if not header:
        raise IRParseError(f"bad function header {lines[0]!r}")
    name = header.group(1)
    params = []
    for param in header.group(2).split(","):
        param = param.strip()
        if param:
            match = _REG_RE.match(param)
            if not match:
                raise IRParseError(f"bad parameter {param!r}")
            params.append(int(match.group(1)))
    func = Function(name, params=params)

    current: Optional[BasicBlock] = None
    first = True
    for line in lines[1:]:
        stripped = line.strip()
        if stripped == "}":
            break
        match = _BLOCK_RE.match(stripped)
        if match and not line.startswith("  "):
            current = BasicBlock(match.group(1))
            func.add_block(current, entry=first)
            first = False
            continue
        if current is None:
            raise IRParseError(f"instruction outside a block: {line!r}")
        current.append(parse_instruction(stripped))
    # Register every mentioned register with the namespace.
    for instr in func.instructions():
        for reg in instr.defs() + instr.uses():
            func.note_reg(reg)
    return func


def parse_module_text(text: str, name: str = "parsed") -> Module:
    """Parse the output of :func:`repro.ir.printer.format_module`."""
    module = Module(name)
    # Split on 'func @' boundaries at top level.
    chunks = re.split(r"(?m)^(?=func @)", text)
    for chunk in chunks:
        if chunk.strip():
            module.add_function(parse_function_text(chunk))
    return module
