"""Basic blocks (and, after formation, hyperblocks).

A :class:`BasicBlock` is a named, ordered list of instructions.  Before
hyperblock formation a block contains at most one test-guarded pair of
branches; after formation a block may contain arbitrarily many predicated
instructions and predicated exit branches.  The structural invariant in both
cases is the same: *on any execution, exactly one branch instruction fires*.
The functional simulator enforces the invariant dynamically.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional

from repro.ir.instruction import Instruction
from repro.ir.opcodes import Opcode

#: Process-wide monotonic stamp source for block versions.  Unlike
#: ``id()``, a stamp is never reused, so ``(name, version)`` is a safe
#: cache token even after a block object is garbage-collected and its
#: address recycled.
_version_counter = itertools.count(1)


class BasicBlock:
    """A single-entry, multiple-exit region of predicated instructions.

    Every block carries a monotonically increasing ``version`` stamp,
    refreshed by the mutating helpers below.  Analyses (use/kill sets,
    liveness, merge-trial memoization) key their caches on it.  Code that
    mutates ``instrs`` directly — rather than through :meth:`append`,
    :meth:`extend` or :meth:`retarget_branches` — must call :meth:`touch`
    afterwards to keep those caches honest.
    """

    __slots__ = ("name", "instrs", "version")

    def __init__(self, name: str, instrs: Optional[list[Instruction]] = None):
        self.name = name
        self.instrs: list[Instruction] = list(instrs) if instrs else []
        self.version = next(_version_counter)

    # -- construction -----------------------------------------------------

    def touch(self) -> int:
        """Re-stamp the block after a mutation; returns the new version."""
        self.version = next(_version_counter)
        return self.version

    def append(self, instr: Instruction) -> Instruction:
        self.instrs.append(instr)
        self.version = next(_version_counter)
        return instr

    def extend(self, instrs) -> None:
        self.instrs.extend(instrs)
        self.version = next(_version_counter)

    # -- queries ------------------------------------------------------------

    def branches(self) -> list[Instruction]:
        """All control-transfer instructions (``BR`` and ``RET``) in order."""
        return [i for i in self.instrs if i.is_branch]

    def non_branch_instrs(self) -> list[Instruction]:
        return [i for i in self.instrs if not i.is_branch]

    def successors(self) -> list[str]:
        """Branch-target block names, in instruction order, de-duplicated."""
        seen: list[str] = []
        for instr in self.instrs:
            if instr.op is Opcode.BR and instr.target is not None:
                if instr.target not in seen:
                    seen.append(instr.target)
        return seen

    def branches_to(self, target: str) -> list[Instruction]:
        """Branch instructions in this block whose target is ``target``."""
        return [
            i for i in self.instrs if i.op is Opcode.BR and i.target == target
        ]

    def has_return(self) -> bool:
        return any(i.op is Opcode.RET for i in self.instrs)

    def has_call(self) -> bool:
        return any(i.op is Opcode.CALL for i in self.instrs)

    def memory_op_count(self) -> int:
        return sum(1 for i in self.instrs if i.is_memory)

    def defined_regs(self) -> set[int]:
        """Registers written by any instruction in the block."""
        regs: set[int] = set()
        for instr in self.instrs:
            if instr.dest is not None:
                regs.add(instr.dest)
        return regs

    def used_regs(self) -> set[int]:
        regs: set[int] = set()
        for instr in self.instrs:
            regs.update(instr.uses())
        return regs

    def upward_exposed_regs(self) -> set[int]:
        """Registers read before any write in this block (live-in candidates)."""
        exposed: set[int] = set()
        written: set[int] = set()
        for instr in self.instrs:
            for reg in instr.uses():
                if reg not in written:
                    exposed.add(reg)
            # A predicated write may leave the old value visible, so a
            # predicated definition does not kill the upward exposure of
            # later reads.
            if instr.dest is not None and instr.pred is None:
                written.add(instr.dest)
        return exposed

    def retarget_branches(self, old: str, new: str) -> int:
        """Point every branch aimed at ``old`` to ``new``; return count."""
        count = 0
        for instr in self.instrs:
            if instr.op is Opcode.BR and instr.target == old:
                instr.target = new
                count += 1
        if count:
            self.version = next(_version_counter)
        return count

    def size(self) -> int:
        return len(self.instrs)

    def copy(self, new_name: str) -> "BasicBlock":
        """Deep-copy the block under a new name (fresh instruction uids)."""
        return BasicBlock(new_name, [i.copy() for i in self.instrs])

    # -- pickling ----------------------------------------------------------

    def __getstate__(self):
        return (self.name, self.instrs)

    def __setstate__(self, state) -> None:
        # Versions are process-local: a block shipped across a process
        # boundary (the parallel formation driver) is re-stamped from the
        # local counter so it can never alias a stamp already handed out
        # in this process.
        self.name, self.instrs = state
        self.version = next(_version_counter)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instrs)

    def __len__(self) -> int:
        return len(self.instrs)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.name} [{len(self.instrs)} instrs]>"
