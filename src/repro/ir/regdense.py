"""Dense register numbering: the interning table and the renumber pass.

The bitmask dataflow engine (:mod:`repro.ir.regmask`) indexes masks by
register number, so its cost is proportional to the *largest* register
number a function uses, not to how many registers it has.  Functions
built through :class:`repro.ir.builder.FunctionBuilder` or grown by the
transforms are dense by construction — ``Function.new_reg`` hands out
sequential numbers — but externally parsed IR (``repro.ir.textparse``)
may name registers sparsely (``v7``, ``v900``).

:class:`RegisterSpace` is the per-function interning table: it owns the
allocation frontier (absorbing what used to be ``Function._next_reg``)
and knows which register names exist, so density is a cheap query and
the name ↔ dense-id correspondence is available without a dict.  It is
*stable across merges*: interned names are never renamed or reused, so
printed IR is byte-identical before and after analyses consult the
table.  In the (overwhelmingly common) dense case the table is purely
implicit — names are exactly ``0..next_reg-1`` — and interning a fresh
register is one integer increment; only sparse input materializes the
name bitmask.

:func:`renumber_registers` is the normalization pass: it rewrites a
function to first-appearance dense numbering (the order the printer
emits operands), returning the mapping.  On IR that is already dense in
appearance order — everything the builder or the frontend produces — the
mapping is the identity and the printed function is unchanged byte for
byte, which the round-trip tests pin on every SPEC workload.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.ir.instruction import Predicate

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.function import Function


class RegisterSpace:
    """Per-function register interning table (name ↔ dense int).

    ``next_reg`` is the allocation frontier.  While the namespace is
    contiguous (every name below the frontier exists) no mask is stored;
    a sparse :meth:`note` — a name beyond the frontier — materializes
    ``_sparse`` and tracking becomes explicit.  ``version`` bumps
    whenever the namespace grows, so analyses that cache per-register
    layouts can detect growth without diffing anything.
    """

    __slots__ = ("next_reg", "version", "_sparse")

    def __init__(self, params=None):
        self.next_reg = 0
        self.version = 0
        self._sparse: Optional[int] = None  # None => dense 0..next_reg-1
        if params:
            for reg in params:
                self.note(reg)

    # -- interning ----------------------------------------------------------

    def new(self) -> int:
        """Allocate (and intern) the next unused register name."""
        reg = self.next_reg
        self.next_reg = reg + 1
        self.version += 1
        if self._sparse is not None:
            self._sparse |= 1 << reg
        return reg

    def note(self, reg: int) -> int:
        """Intern ``reg``; keeps later :meth:`new` calls collision-free."""
        if reg < self.next_reg:
            sparse = self._sparse
            if sparse is not None and not sparse >> reg & 1:
                self._sparse = sparse | 1 << reg
                self.version += 1
            return reg
        if reg > self.next_reg:
            # A gap opened: switch to explicit tracking.
            if self._sparse is None:
                self._sparse = (1 << self.next_reg) - 1
            self._sparse |= 1 << reg
        elif self._sparse is not None:
            self._sparse |= 1 << reg
        self.next_reg = reg + 1
        self.version += 1
        return reg

    # -- queries ------------------------------------------------------------

    @property
    def seen(self) -> int:
        """Bitmask of every interned register name."""
        if self._sparse is not None:
            return self._sparse
        return (1 << self.next_reg) - 1

    @property
    def count(self) -> int:
        """Number of distinct register names interned."""
        if self._sparse is not None:
            return self._sparse.bit_count()
        return self.next_reg

    @property
    def width(self) -> int:
        """Bits a register mask for this function needs (frontier bound)."""
        return self.next_reg

    def is_dense(self) -> bool:
        """True iff the interned names are exactly ``0..count-1``."""
        if self._sparse is None:
            return True
        seen = self._sparse
        return seen == (1 << seen.bit_length()) - 1

    def dense_of(self, reg: int) -> int:
        """Dense id of an interned name: its rank among interned names."""
        if self._sparse is None:
            return reg
        return (self._sparse & ((1 << reg) - 1)).bit_count()

    def reg_of(self, dense: int) -> int:
        """Inverse of :meth:`dense_of` (cold path: walks the mask)."""
        if self._sparse is None:
            if dense >= self.next_reg:
                raise IndexError(f"dense id {dense} out of range")
            return dense
        mask = self._sparse
        for _ in range(dense):
            mask ^= mask & -mask
        if not mask:
            raise IndexError(f"dense id {dense} out of range")
        return (mask & -mask).bit_length() - 1

    def copy(self) -> "RegisterSpace":
        clone = RegisterSpace()
        clone.next_reg = self.next_reg
        clone.version = self.version
        clone._sparse = self._sparse
        return clone

    # -- pickling (slots need explicit state) --------------------------------

    def __getstate__(self):
        return (self.next_reg, self.version, self._sparse)

    def __setstate__(self, state) -> None:
        self.next_reg, self.version, self._sparse = state

    def __repr__(self) -> str:
        kind = "dense" if self.is_dense() else "sparse"
        return f"<RegisterSpace {self.count} regs, next v{self.next_reg}, {kind}>"


def renumber_registers(func: "Function") -> dict[int, int]:
    """Rewrite ``func`` to dense first-appearance register numbering.

    Appearance order follows the printer: parameters first, then per
    instruction the destination, the sources, and the predicate register,
    over blocks in printed order (entry first, then insertion order).  On
    already-dense IR in that order the mapping is the identity and the
    function is untouched (no version bumps); otherwise every instruction
    is rewritten in place and blocks are re-stamped.

    Returns the ``old name -> dense name`` mapping.
    """
    mapping: dict[int, int] = {}

    def intern(reg: int) -> None:
        if reg not in mapping:
            mapping[reg] = len(mapping)

    for reg in func.params:
        intern(reg)
    names = list(func.blocks)
    if func.entry in names:
        names.remove(func.entry)
        names.insert(0, func.entry)
    for name in names:
        for instr in func.blocks[name].instrs:
            if instr.dest is not None:
                intern(instr.dest)
            for reg in instr.srcs:
                intern(reg)
            if instr.pred is not None:
                intern(instr.pred.reg)

    if all(old == new for old, new in mapping.items()):
        # Already dense in appearance order; leave versions untouched so
        # analysis caches survive.
        return mapping

    func.params = [mapping[reg] for reg in func.params]
    for name in names:
        block = func.blocks[name]
        for instr in block.instrs:
            if instr.dest is not None:
                instr.dest = mapping[instr.dest]
            if instr.srcs:
                instr.srcs = tuple(mapping[reg] for reg in instr.srcs)
            pred = instr.pred
            if pred is not None:
                instr.pred = Predicate(mapping[pred.reg], pred.sense)
        block.touch()

    space = RegisterSpace()
    space.next_reg = len(mapping)
    space.version = len(mapping)
    func.regs = space
    func.touch()
    return mapping
