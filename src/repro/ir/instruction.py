"""The :class:`Instruction` — a predicated RISC-like operation.

Instructions use virtual register numbers (plain ints) for operands and
results.  Every instruction may carry a *predicate*: a ``(register, sense)``
pair.  A predicated instruction only executes when the register's boolean
value matches the sense; a predicated-false instruction writes nothing and,
if it is a branch, does not fire.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional

from repro.ir.opcodes import (
    BRANCH_OPS,
    MEMORY_OPS,
    OP_INFO,
    PURE_OPS,
    TEST_OPS,
    Opcode,
)

_uid_counter = itertools.count(1)


class Predicate:
    """A guard ``(reg, sense)``: execute iff ``bool(reg_value) == sense``."""

    __slots__ = ("reg", "sense")

    def __init__(self, reg: int, sense: bool = True):
        self.reg = reg
        self.sense = bool(sense)

    def negated(self) -> "Predicate":
        return Predicate(self.reg, not self.sense)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Predicate)
            and self.reg == other.reg
            and self.sense == other.sense
        )

    def __hash__(self) -> int:
        return hash((self.reg, self.sense))

    def __repr__(self) -> str:
        mark = "" if self.sense else "!"
        return f"{mark}v{self.reg}"


class Instruction:
    """A single IR operation.

    Attributes:
        op: the :class:`Opcode`.
        dest: destination virtual register, or ``None``.
        srcs: tuple of source virtual registers.
        imm: immediate operand (int or float), or ``None``.
        target: branch target block name (``BR`` only).
        callee: called function name (``CALL`` only).
        pred: optional :class:`Predicate` guard.
        uid: unique id, preserved by copies made with :meth:`copy` being
            *fresh* — a copy gets a new uid but remembers its ``origin``.
        origin: uid of the instruction this one was duplicated from (or its
            own uid for originals); used by merge statistics and debugging.
    """

    __slots__ = ("op", "dest", "srcs", "imm", "target", "callee", "pred",
                 "uid", "origin", "lsid")

    def __init__(
        self,
        op: Opcode,
        dest: Optional[int] = None,
        srcs: Iterable[int] = (),
        imm=None,
        target: Optional[str] = None,
        callee: Optional[str] = None,
        pred: Optional[Predicate] = None,
        origin: Optional[int] = None,
    ):
        self.op = op
        self.dest = dest
        self.srcs = tuple(srcs)
        self.imm = imm
        self.target = target
        self.callee = callee
        self.pred = pred
        self.uid = next(_uid_counter)
        self.origin = origin if origin is not None else self.uid
        #: load/store identifier, assigned by the backend
        self.lsid: Optional[int] = None

    # -- classification -------------------------------------------------

    @property
    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS

    @property
    def is_test(self) -> bool:
        return self.op in TEST_OPS

    @property
    def is_memory(self) -> bool:
        return self.op in MEMORY_OPS

    @property
    def is_call(self) -> bool:
        return self.op is Opcode.CALL

    @property
    def is_pure(self) -> bool:
        return self.op in PURE_OPS

    @property
    def latency(self) -> int:
        return OP_INFO[self.op].latency

    # -- registers ------------------------------------------------------

    def uses(self) -> tuple[int, ...]:
        """All registers read, including the predicate register."""
        if self.pred is not None:
            return self.srcs + (self.pred.reg,)
        return self.srcs

    def defs(self) -> tuple[int, ...]:
        return (self.dest,) if self.dest is not None else ()

    def rewrite_srcs(self, mapping: dict[int, int]) -> None:
        """Replace source (and predicate) registers per ``mapping`` in place."""
        self.srcs = tuple(mapping.get(s, s) for s in self.srcs)
        if self.pred is not None and self.pred.reg in mapping:
            self.pred = Predicate(mapping[self.pred.reg], self.pred.sense)

    # -- duplication ----------------------------------------------------

    def copy(self) -> "Instruction":
        """A fresh instruction with identical payload but a new uid."""
        # Bypasses __init__: this runs once per duplicated instruction of
        # every *attempted* merge, so slot stores beat keyword dispatch.
        new = Instruction.__new__(Instruction)
        new.op = self.op
        new.dest = self.dest
        new.srcs = self.srcs
        new.imm = self.imm
        new.target = self.target
        new.callee = self.callee
        pred = self.pred
        new.pred = Predicate(pred.reg, pred.sense) if pred is not None else None
        new.uid = next(_uid_counter)
        new.origin = self.origin
        new.lsid = None
        return new

    # -- display ----------------------------------------------------------

    def __repr__(self) -> str:
        parts = []
        if self.dest is not None:
            parts.append(f"v{self.dest} =")
        parts.append(self.op.value)
        operands = [f"v{s}" for s in self.srcs]
        if self.imm is not None:
            operands.append(repr(self.imm))
        if self.callee is not None:
            operands.insert(0, f"@{self.callee}")
        if self.target is not None:
            operands.append(self.target)
        if operands:
            parts.append(", ".join(operands))
        text = " ".join(parts)
        if self.pred is not None:
            text += f" if {self.pred!r}"
        return text
