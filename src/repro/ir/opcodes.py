"""Opcode definitions for the RISC-like predicated IR.

The instruction set is deliberately TRIPS-flavored: test instructions
produce boolean (0/1) values into ordinary registers, which then feed
predicated instructions and predicated branches.  There are no condition
codes.  Every branch is an unconditional ``BR`` that may carry a predicate;
conditional control flow is expressed as two complementary predicated
branches, which is exactly the form hyperblock formation wants.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Opcode(enum.Enum):
    """All operations understood by the IR, interpreter and timing model."""

    # Opcodes key the optimizer's value-numbering tables and the OP_INFO /
    # semantics dispatch dicts, so their hash is on the hottest path of
    # convergent formation.  Members are singletons and compare by
    # identity, so the C-level identity hash is equivalent to (and much
    # cheaper than) ``Enum.__hash__``'s Python-level hash-of-name.
    __hash__ = object.__hash__

    # Integer arithmetic / logic.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    NEG = "neg"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"

    # Floating point (distinct latencies in the timing model).
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"

    # Moves.  MOV copies a register, MOVI materializes an immediate.
    MOV = "mov"
    MOVI = "movi"

    # Tests: produce 1 if the relation holds, else 0.
    TEQ = "teq"
    TNE = "tne"
    TLT = "tlt"
    TLE = "tle"
    TGT = "tgt"
    TGE = "tge"

    # Memory.  Address is ``src0 + imm``; STORE stores src1.
    LOAD = "load"
    STORE = "store"

    # Control.
    BR = "br"  # unconditional (possibly predicated) branch to a block
    RET = "ret"  # return from function; optional value in src0
    CALL = "call"  # call `callee` with srcs as args, result into dest

    # Backend-only pseudo ops.
    NULLW = "nullw"  # null register write (fixed-output padding)
    NULLS = "nulls"  # null store (fixed-output padding)
    FANOUT = "fanout"  # value replication mov inserted by the backend


#: Opcodes that transfer control out of a block.
BRANCH_OPS = frozenset({Opcode.BR, Opcode.RET})

#: Opcodes that compare and produce a 0/1 value.
TEST_OPS = frozenset(
    {Opcode.TEQ, Opcode.TNE, Opcode.TLT, Opcode.TLE, Opcode.TGT, Opcode.TGE}
)

#: Opcodes that touch memory (consume load/store identifiers on TRIPS).
MEMORY_OPS = frozenset({Opcode.LOAD, Opcode.STORE})

FLOAT_OPS = frozenset({Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV})

#: Commutative binary operations, used by value numbering to canonicalize.
COMMUTATIVE_OPS = frozenset(
    {
        Opcode.ADD,
        Opcode.MUL,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.FADD,
        Opcode.FMUL,
        Opcode.TEQ,
        Opcode.TNE,
    }
)

#: Operations that are pure functions of their operands (safe for GVN/DCE).
PURE_OPS = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.MUL,
        Opcode.DIV,
        Opcode.MOD,
        Opcode.NEG,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.NOT,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.FADD,
        Opcode.FSUB,
        Opcode.FMUL,
        Opcode.FDIV,
        Opcode.MOV,
        Opcode.MOVI,
    }
    | TEST_OPS
)


@dataclass(frozen=True)
class OpInfo:
    """Static properties of an opcode used by the verifier and simulators."""

    nsrcs: int
    has_dest: bool
    latency: int  # execution latency in cycles for the timing model


_DEFAULT_ALU = OpInfo(nsrcs=2, has_dest=True, latency=1)

OP_INFO: dict[Opcode, OpInfo] = {
    Opcode.ADD: _DEFAULT_ALU,
    Opcode.SUB: _DEFAULT_ALU,
    Opcode.MUL: OpInfo(2, True, 3),
    Opcode.DIV: OpInfo(2, True, 18),
    Opcode.MOD: OpInfo(2, True, 18),
    Opcode.NEG: OpInfo(1, True, 1),
    Opcode.AND: _DEFAULT_ALU,
    Opcode.OR: _DEFAULT_ALU,
    Opcode.XOR: _DEFAULT_ALU,
    Opcode.NOT: OpInfo(1, True, 1),
    Opcode.SHL: _DEFAULT_ALU,
    Opcode.SHR: _DEFAULT_ALU,
    Opcode.FADD: OpInfo(2, True, 4),
    Opcode.FSUB: OpInfo(2, True, 4),
    Opcode.FMUL: OpInfo(2, True, 5),
    Opcode.FDIV: OpInfo(2, True, 24),
    Opcode.MOV: OpInfo(1, True, 1),
    Opcode.MOVI: OpInfo(0, True, 1),
    Opcode.TEQ: _DEFAULT_ALU,
    Opcode.TNE: _DEFAULT_ALU,
    Opcode.TLT: _DEFAULT_ALU,
    Opcode.TLE: _DEFAULT_ALU,
    Opcode.TGT: _DEFAULT_ALU,
    Opcode.TGE: _DEFAULT_ALU,
    Opcode.LOAD: OpInfo(1, True, 5),
    Opcode.STORE: OpInfo(2, False, 1),
    Opcode.BR: OpInfo(0, False, 1),
    Opcode.RET: OpInfo(0, False, 1),
    Opcode.CALL: OpInfo(0, True, 1),  # nsrcs is variable for CALL
    Opcode.NULLW: OpInfo(0, True, 1),
    Opcode.NULLS: OpInfo(0, False, 1),
    Opcode.FANOUT: OpInfo(1, True, 1),
}

#: Inverse of each test, used by predicate optimization and branch folding.
INVERTED_TEST: dict[Opcode, Opcode] = {
    Opcode.TEQ: Opcode.TNE,
    Opcode.TNE: Opcode.TEQ,
    Opcode.TLT: Opcode.TGE,
    Opcode.TGE: Opcode.TLT,
    Opcode.TGT: Opcode.TLE,
    Opcode.TLE: Opcode.TGT,
}
