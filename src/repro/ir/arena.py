"""Struct-of-arrays instruction arena: flat-int columns for the hot analyses.

PRs 1-2 established the pattern that every formation speedup in this repo
followed: replace Python objects with machine integers (dense register
IDs, bitmask dataflow).  This module finishes the move for the
instructions themselves.  A block's instructions are *encoded* once into
parallel ``array('q')`` columns — opcode id, destination register,
packed predicate — plus a CSR-style operand table (per-instruction
offsets into one flat source-register pool), and the per-trial analyses
(use/kill masks, upward-exposed reads, the structural estimator, DCE,
GVN keys) iterate those columns instead of walking ``Instruction``
objects.  One encode pass additionally precomputes every per-block fact
those consumers share (kill/def/remat masks, memory-op counts, consumer
fanout), so a single O(n) scan serves ~4 analyses per merge trial.

The object graph stays the source of truth.  Blocks are still lists of
:class:`~repro.ir.instruction.Instruction`; transforms, the printer, the
interpreter, and the verifier never see the arena.  Encoded *views* are
a cache keyed by ``BasicBlock.version`` — stamps are process-unique and
never reused (see :mod:`repro.ir.block`), so a view can never describe
stale contents.  Restore/compaction therefore only ever *drops* cache;
both are trivially sound.

Backend selection: ``REPRO_IR_BACKEND`` picks one of three tiers.
``legacy`` disables the arena and every consumer falls back to its
original object-graph scan; ``arena`` (the default) serves the flat-int
columns with pure-CPython loops; ``numpy`` keeps the same columns but
lets the hot consumers run vectorized kernels over zero-copy
``np.frombuffer`` mirrors of them (see :mod:`repro.ir.arena_np`).  The
numpy tier is strictly additive — it changes how facts are *computed*,
never what they are — and degrades to the ``arena`` tier when numpy is
not importable.  Selection is captured at function build time in
``Function.arena`` (used by trial-guard checkpoints and the run
ledger); the analyses themselves gate on the module-level
:data:`ENABLED` / :data:`NUMPY` flags, which test fixtures flip via
:func:`set_backend`.
"""

from __future__ import annotations

import os
from array import array
from typing import Optional

from repro.ir.opcodes import (
    COMMUTATIVE_OPS,
    MEMORY_OPS,
    PURE_OPS,
    Opcode,
)

# ---------------------------------------------------------------------------
# Backend selection
# ---------------------------------------------------------------------------

#: Environment variable naming the IR analysis backend.
BACKEND_ENV = "REPRO_IR_BACKEND"
_BACKENDS = ("numpy", "arena", "legacy")

# Lazy numpy probe: ``None`` = not yet attempted.  numpy is an optional
# extra (``pip install .[fast]``); importing it costs ~100 ms, so the
# probe only runs when the numpy backend is actually requested.
_NUMPY_PROBED: Optional[bool] = None


def numpy_available() -> bool:
    """Whether the vectorized kernel tier can load (guarded import)."""
    global _NUMPY_PROBED
    if _NUMPY_PROBED is None:
        try:
            import numpy  # noqa: F401

            _NUMPY_PROBED = True
        except ImportError:
            _NUMPY_PROBED = False
    return _NUMPY_PROBED


def available_backends() -> tuple[str, ...]:
    """The backend names selectable on this interpreter, fastest first."""
    if numpy_available():
        return _BACKENDS
    return tuple(b for b in _BACKENDS if b != "numpy")


def _resolve(name: str) -> tuple[bool, bool]:
    """Map a backend name to the ``(ENABLED, NUMPY)`` flag pair.

    ``numpy`` degrades to ``arena`` when numpy is not importable — the
    columns and every flat-loop fallback are unaffected, so the cheap
    graceful path beats a hard error in CI legs without the extra.
    """
    if name == "legacy":
        return False, False
    if name == "numpy":
        return True, numpy_available()
    return True, False


def _read_env() -> tuple[bool, bool]:
    value = os.environ.get(BACKEND_ENV, "arena").strip().lower()
    if value and value not in _BACKENDS:
        raise ValueError(
            f"{BACKEND_ENV}={value!r}: expected one of {_BACKENDS}"
        )
    return _resolve(value or "arena")


#: Whether the arena backend is active.  Consumers read this per call, so
#: flipping it (via :func:`set_backend`) takes effect immediately; the
#: per-function ``Function.arena`` handle records the selection that was
#: live when the function was built.
ENABLED: bool
#: Whether the vectorized numpy consumer tier is active (implies ENABLED).
NUMPY: bool
ENABLED, NUMPY = _read_env()


def backend() -> str:
    """Name of the backend in effect (``"numpy"``/``"arena"``/``"legacy"``)."""
    if NUMPY:
        return "numpy"
    return "arena" if ENABLED else "legacy"


def set_backend(name: Optional[str] = None) -> str:
    """Select the analysis backend; ``None`` re-reads the environment.

    Returns the name now in effect (``numpy`` reports ``arena`` when the
    extra is absent).  Used by tests and the bench's backend smoke;
    production selection is the environment variable read once at import.
    """
    global ENABLED, NUMPY
    if name is None:
        ENABLED, NUMPY = _read_env()
    elif name in _BACKENDS:
        ENABLED, NUMPY = _resolve(name)
    else:
        raise ValueError(f"unknown backend {name!r}: expected {_BACKENDS}")
    return backend()


# ---------------------------------------------------------------------------
# Opcode interning
# ---------------------------------------------------------------------------

_OPCODES: tuple[Opcode, ...] = tuple(Opcode)

#: Opcode -> dense int id (the value stored in the ``op`` column).
OP_IDS: dict[Opcode, int] = {op: i for i, op in enumerate(_OPCODES)}

#: Dense id -> Opcode (decode direction, cold paths only).
OPS_BY_ID: tuple[Opcode, ...] = _OPCODES

# Per-opcode property bitflags, indexable by opcode id — the column-side
# equivalent of the ``op in SOME_FROZENSET`` membership tests.
F_PURE = 1 << 0
F_MEMORY = 1 << 1
F_STORE = 1 << 2
F_DCE_REMOVABLE = 1 << 3  # PURE_OPS | {NULLW, FANOUT} (see opt.local)
F_COMMUTATIVE = 1 << 4

_DCE_OPS = PURE_OPS | {Opcode.NULLW, Opcode.FANOUT}


def _flags_of(op: Opcode) -> int:
    flags = 0
    if op in PURE_OPS:
        flags |= F_PURE
    if op in MEMORY_OPS:
        flags |= F_MEMORY
    if op is Opcode.STORE:
        flags |= F_STORE
    if op in _DCE_OPS:
        flags |= F_DCE_REMOVABLE
    if op in COMMUTATIVE_OPS:
        flags |= F_COMMUTATIVE
    return flags


OP_FLAGS: tuple[int, ...] = tuple(_flags_of(op) for op in _OPCODES)

# Ids the hot loops compare against directly.
OP_MOV = OP_IDS[Opcode.MOV]
OP_MOVI = OP_IDS[Opcode.MOVI]
OP_AND = OP_IDS[Opcode.AND]
OP_NOT = OP_IDS[Opcode.NOT]
OP_LOAD = OP_IDS[Opcode.LOAD]
OP_STORE = OP_IDS[Opcode.STORE]
OP_BR = OP_IDS[Opcode.BR]

#: Column slot count that triggers compaction at the next encode.  At
#: 8 bytes per slot per column this bounds the arrays to ~10 MB; the
#: formation caches that shield the arena (use/kill, exposed, def-mask
#: memos are all version-keyed *outside* it) keep re-encodes rare.
COMPACT_SLOT_LIMIT = 1 << 18


class BlockView:
    """One block's encoded extent plus the per-block facts of that encode.

    ``base``/``n`` index the owning arena's columns; everything else is a
    plain Python value computed during the encode pass.  A view is valid
    only while ``epoch`` matches the arena's (compaction bumps the epoch
    and recycles the columns).
    """

    __slots__ = (
        "epoch",
        "base",
        "n",
        "kill_mask",       # unpredicated destinations
        "def_mask",        # all destinations
        "remat_mask",      # registers whose last write was MOVI
        "mem_ops",
        "pred_stores",
        "succ",            # branch-target names, in order, de-duplicated
        "unpredicated",    # no instruction carries a predicate
        "exposed",         # upward-exposed mask; None unless unpredicated
    )


class Arena:
    """Process-global struct-of-arrays store for encoded blocks.

    A single store serves every function: the analyses receive bare
    blocks, and block version stamps are process-unique, so one
    version-keyed view table cannot confuse two owners.  Columns only
    grow; trial-guard checkpoints truncate them back on rollback and
    compaction recycles them wholesale once they pass
    :data:`COMPACT_SLOT_LIMIT`.
    """

    def __init__(self) -> None:
        self.op = array("q")
        self.dest = array("q")      # -1 = no destination
        self.pred = array("q")      # -1 = none, else reg << 1 | sense
        self.src_off = array("q", (0,))  # CSR offsets into src_pool
        self.src_pool = array("q")
        self.imm: list = []         # parallel immediates (arbitrary objects)
        self.views: dict[int, BlockView] = {}  # block version -> view
        self.epoch = 0
        # Cached zero-copy numpy mirrors of the columns (arena_np.Mirrors),
        # or None.  A live mirror *pins* the array buffers — CPython raises
        # BufferError on any resize while a memoryview is exported — so
        # every mutation site below drops it first; readers rebuild lazily
        # via mirrors().
        self._mirrors = None
        self.mirror_builds = 0
        # counters (exported via counters() / publish_metrics())
        self.encodes = 0
        self.view_hits = 0
        self.deposits = 0
        self.instrs_stored = 0
        self.snapshots = 0
        self.restores = 0
        self.compactions = 0

    # -- encoding -------------------------------------------------------

    def encode_block(self, block, register: bool = True) -> BlockView:
        """Append ``block``'s instructions to the columns; return the view.

        The single pass also computes every derived per-block fact the
        hot consumers need.  ``register=False`` skips the view table —
        used by the optimizer while it mutates the block between passes
        (the block's version does not move during those mutations, so a
        registered view would lie; see ``opt.local.optimize_block``).
        """
        if len(self.op) >= COMPACT_SLOT_LIMIT:
            self._compact()
        if self._mirrors is not None:
            self._mirrors = None  # unpin the buffers before appending
        ops = self.op
        dests = self.dest
        preds = self.pred
        off = self.src_off
        pool = self.src_pool
        op_ids = OP_IDS
        base = len(ops)
        ops_append = ops.append
        dests_append = dests.append
        preds_append = preds.append
        off_append = off.append
        pool_extend = pool.extend
        imms_append = self.imm.append

        kill = 0
        defs = 0
        remat = 0
        mem_ops = 0
        pred_stores = 0
        unpredicated = True
        exposed = 0
        succ: list[str] = []
        instrs = block.instrs
        # While the block is all-unpredicated so far, ``kill`` doubles as
        # the running killed-set for the exposure computation (every prior
        # write was unpredicated, so the two masks coincide).  Consumer
        # counting is deliberately NOT done here: the estimator derives it
        # from the CSR pool with a flat loop (see ``estimate_block``), so
        # encodes whose view never feeds an estimate don't pay for it.
        for instr in instrs:
            opid = op_ids[instr.op]
            dest = instr.dest
            pred = instr.pred
            srcs = instr.srcs
            ops_append(opid)
            imms_append(instr.imm)
            if srcs:
                pool_extend(srcs)
            off_append(len(pool))
            if pred is None:
                preds_append(-1)
                if unpredicated and srcs:
                    # Exposure for the all-unpredicated case falls out of
                    # the same pass (sources observed before the dest).
                    for s in srcs:
                        if not kill >> s & 1:
                            exposed |= 1 << s
            else:
                preds_append(pred.reg << 1 | pred.sense)
                unpredicated = False
            if dest is None:
                dests_append(-1)
            else:
                dests_append(dest)
                bit = 1 << dest
                defs |= bit
                if opid == OP_MOVI:
                    remat |= bit
                else:
                    remat &= ~bit
                if pred is None:
                    kill |= bit
            if opid == OP_LOAD:
                mem_ops += 1
            elif opid == OP_STORE:
                mem_ops += 1
                if pred is not None:
                    pred_stores += 1
            elif opid == OP_BR:
                target = instr.target
                if target is not None and target not in succ:
                    succ.append(target)

        view = BlockView.__new__(BlockView)
        view.epoch = self.epoch
        view.base = base
        view.n = len(instrs)
        view.kill_mask = kill
        view.def_mask = defs
        view.remat_mask = remat
        view.mem_ops = mem_ops
        view.pred_stores = pred_stores
        view.succ = succ
        view.unpredicated = unpredicated
        view.exposed = exposed if unpredicated else None
        self.encodes += 1
        self.instrs_stored += view.n
        if register:
            self.views[block.version] = view
        return view

    def view_of(self, block) -> BlockView:
        """The (possibly cached) view of ``block``'s current contents."""
        view = self.views.get(block.version)
        if view is not None and view.epoch == self.epoch:
            self.view_hits += 1
            return view
        return self.encode_block(block)

    def deposit(self, version: int, view: BlockView) -> None:
        """Register an unregistered view under ``version``.

        Used by the optimizer to donate its final encode: the block was
        re-stamped after the passes settled, so the view describes the
        content behind the *new* version and downstream consumers
        (estimator, use/kill) get a free hit.
        """
        if view.epoch == self.epoch:
            self.views[version] = view
            self.deposits += 1

    # -- numpy mirrors --------------------------------------------------

    def mirrors(self):
        """Zero-copy numpy views of the columns, rebuilt lazily.

        The cached :class:`repro.ir.arena_np.Mirrors` survives any number
        of reads but is invalidated by every column mutation (encode
        append, restore truncation, compaction/clear) — those sites drop
        it *before* resizing, because a live ndarray export pins the
        ``array('q')`` buffers.  The epoch/extent check is therefore a
        pure assertion of freshness: a mirror that survived to this point
        always describes the current columns.
        """
        m = self._mirrors
        if (
            m is not None
            and m.epoch == self.epoch
            and m.n_slots == len(self.op)
            and m.n_pool == len(self.src_pool)
        ):
            return m
        from repro.ir import arena_np

        m = arena_np.Mirrors(self)
        self._mirrors = m
        self.mirror_builds += 1
        return m

    # -- checkpoint / restore -------------------------------------------

    def checkpoint(self) -> tuple[int, int, int]:
        """An O(1) mark of the current column extents (epoch, slots, pool)."""
        self.snapshots += 1
        return (self.epoch, len(self.op), len(self.src_pool))

    def restore(self, mark: tuple[int, int, int]) -> None:
        """Truncate the columns back to ``mark``.

        Views are a pure version-keyed cache, so dropping them is always
        sound; truncation only reclaims the scratch encodes a rolled-back
        trial appended.  A mark from before a compaction cannot be
        honored slot-for-slot — the columns were recycled — so the whole
        store is conservatively cleared instead.
        """
        self.restores += 1
        epoch, n_slots, n_pool = mark
        if epoch != self.epoch:
            self._clear()
            return
        self._mirrors = None  # unpin the buffers before truncating
        del self.op[n_slots:]
        del self.dest[n_slots:]
        del self.pred[n_slots:]
        del self.src_off[n_slots + 1:]
        del self.src_pool[n_pool:]
        del self.imm[n_slots:]
        if self.views:
            stale = [
                version
                for version, view in self.views.items()
                if view.base + view.n > n_slots
            ]
            for version in stale:
                del self.views[version]

    # -- maintenance ----------------------------------------------------

    def _clear(self) -> None:
        self._mirrors = None  # unpin the buffers before truncating
        del self.op[:]
        del self.dest[:]
        del self.pred[:]
        del self.src_off[1:]
        del self.src_pool[:]
        del self.imm[:]
        self.views.clear()
        self.epoch += 1

    def _compact(self) -> None:
        """Recycle the columns once they pass the slot limit.

        Safe at encode entry because no consumer holds raw column indices
        across an encode of *another* block: every hot path takes its
        view and finishes reading before the next encode can happen.
        Outstanding views are invalidated by the epoch bump and re-encode
        lazily on their next use.
        """
        self.compactions += 1
        self._clear()

    # -- reporting ------------------------------------------------------

    @property
    def column_bytes(self) -> int:
        return sum(
            a.itemsize * len(a)
            for a in (self.op, self.dest, self.pred, self.src_off,
                      self.src_pool)
        )

    def counters(self) -> dict:
        return {
            "encodes": self.encodes,
            "view_hits": self.view_hits,
            "deposits": self.deposits,
            "instrs_stored": self.instrs_stored,
            "snapshots": self.snapshots,
            "restores": self.restores,
            "compactions": self.compactions,
            "mirror_builds": self.mirror_builds,
            "column_bytes": self.column_bytes,
            "live_slots": len(self.op),
            "live_views": len(self.views),
        }

    def publish_metrics(self, registry=None) -> None:
        """Export the counters as ``arena_*`` gauges in an obs registry."""
        from repro.obs.metrics import get_registry

        target = registry if registry is not None else get_registry()
        for name, value in self.counters().items():
            target.set(f"arena_{name}", value)


#: The process-global store.  ``Function.__init__`` captures it (or
#: ``None`` under the legacy backend); the analyses reach it directly.
STORE = Arena()


def successors_of(block) -> list[str]:
    """``block.successors()`` served from the view's precomputed list.

    CFG rebuilds ask for every block's successors on every analysis
    invalidation; under the arena the terminator scan happened once at
    encode time.  Callers must treat the returned list as read-only (it
    is aliased by every CFG built from the same view).
    """
    if ENABLED:
        return STORE.view_of(block).succ
    return block.successors()
